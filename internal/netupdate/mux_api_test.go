package netupdate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ipdelta/internal/obs"
)

// serveTCP starts srv on a loopback listener and returns its address.
func serveTCP(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(l)
	}()
	t.Cleanup(func() {
		l.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after listener close")
		}
	})
	return l.Addr().String()
}

func TestV2SingleSessionOverTCP(t *testing.T) {
	history := makeHistory(2, 16<<10, 61)
	srv, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	addr := serveTCP(t, srv)

	cc, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cc.Close()
	dev := deviceFor(t, history[0], 64<<10)
	res, err := cc.Update(context.Background(), dev)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if res.UpToDate || res.FullImage {
		t.Fatalf("expected a delta session, got %+v", res)
	}
	if !bytes.Equal(dev.Image(), srv.Current()) {
		t.Fatal("device image wrong after v2 session")
	}
	// A second session on the same connection: up to date now.
	res, err = cc.Update(context.Background(), dev)
	if err != nil {
		t.Fatalf("second Update: %v", err)
	}
	if !res.UpToDate {
		t.Fatalf("expected up-to-date, got %+v", res)
	}
}

func TestV2ManySessionsOneConn(t *testing.T) {
	history := makeHistory(2, 8<<10, 62)
	reg := obs.NewRegistry()
	srv, err := NewServer(history, WithObserver(reg), WithStreamLimit(64))
	if err != nil {
		t.Fatal(err)
	}
	addr := serveTCP(t, srv)

	cc, err := Dial(context.Background(), addr, WithStreamLimit(64))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cc.Close()

	const devices = 40
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := deviceFor(t, history[0], 32<<10)
			if _, err := cc.Update(context.Background(), dev); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(dev.Image(), srv.Current()) {
				errs <- errors.New("device image wrong")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["ipdelta_server_sessions_total"]; got != devices {
		t.Fatalf("server saw %d sessions, want %d", got, devices)
	}
	if got := reg.Snapshot().Counters["ipdelta_server_v1_sessions_total"]; got != 0 {
		t.Fatalf("v1 shim served %d sessions on a v2 conn", got)
	}
}

// TestV1ShimStillServes: a pre-v2 client (raw conn + deprecated
// UpdateDevice) against the negotiating server.
func TestV1ShimStillServes(t *testing.T) {
	history := makeHistory(2, 8<<10, 63)
	reg := obs.NewRegistry()
	srv, err := NewServer(history, WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	addr := serveTCP(t, srv)

	dev := deviceFor(t, history[0], 32<<10)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := UpdateDevice(conn, dev); err != nil {
		t.Fatalf("v1 session: %v", err)
	}
	if !bytes.Equal(dev.Image(), srv.Current()) {
		t.Fatal("device image wrong over the v1 shim")
	}
	if got := reg.Snapshot().Counters["ipdelta_server_v1_sessions_total"]; got != 1 {
		t.Fatalf("v1 shim counter = %d, want 1", got)
	}
}

// TestV2ClientAgainstV1Server: the reverse negotiation direction — a v2
// client dialing a server that only speaks v1 fails typed, not hung.
func TestV2ClientAgainstV1Server(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				// A v1-only server: reads the hello it expects, chokes on
				// frames, and hangs up.
				buf := make([]byte, 256)
				conn.Read(buf)
			}()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = Dial(ctx, l.Addr().String())
	if err == nil {
		t.Fatal("Dial succeeded against a v1-only server")
	}
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Dial error = %v, want ErrVersionMismatch", err)
	}
}

// TestClientRunnerOverStreams drives the retry Client with a per-attempt
// stream dialer on one shared connection.
func TestClientRunnerOverStreams(t *testing.T) {
	history := makeHistory(3, 8<<10, 64)
	srv, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	addr := serveTCP(t, srv)
	cc, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	cl := NewClient(
		WithMaxAttempts(4),
		WithSleep(func(context.Context, time.Duration) error { return nil }),
	)
	dev := deviceFor(t, history[1], 32<<10)
	rep, err := cl.Run(context.Background(), cc.Dialer(), dev)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Attempts != 1 {
		t.Fatalf("clean network took %d attempts", rep.Attempts)
	}
	if !bytes.Equal(dev.Image(), srv.Current()) {
		t.Fatal("device image wrong after runner-over-streams")
	}
}

// TestV2SessionFailureBudget: the failure budget applies per stream
// session, keyed by the connection's remote host.
func TestV2SessionFailureBudget(t *testing.T) {
	history := makeHistory(2, 4<<10, 65)
	srv, err := NewServer(history, WithFailureBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	addr := serveTCP(t, srv)
	cc, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// An unknown-version device fails its sessions, burning budget.
	junk := bytes.Repeat([]byte{0xAB}, 4096)
	for i := 0; i < 2; i++ {
		dev := deviceFor(t, junk, 32<<10)
		if _, err := cc.Update(context.Background(), dev); err == nil {
			t.Fatalf("unknown version session %d succeeded", i)
		}
	}
	// Budget exhausted: the next session is refused outright.
	dev := deviceFor(t, history[0], 32<<10)
	_, err = cc.Update(context.Background(), dev)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("post-budget session error = %v, want ServerError", err)
	}
}

// TestV2Deadlines: MessageTimeout fires on a stalled stream instead of
// hanging the session forever.
func TestV2Deadlines(t *testing.T) {
	history := makeHistory(2, 4<<10, 66)
	srv, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	addr := serveTCP(t, srv)
	cc, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	// Open a raw stream and send nothing; our read must time out via the
	// stream deadline plumbing rather than block.
	st, err := cc.OpenStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := st.Read(buf); err == nil {
		t.Fatal("read on silent stream succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("stream read deadline did not fire")
	}
}

// TestV2ContextCancel: cancelling a session context aborts in-flight
// stream I/O (the cancelOnCtx SetDeadline path over mux).
func TestV2ContextCancel(t *testing.T) {
	history := makeHistory(2, 4<<10, 67)
	srv, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	addr := serveTCP(t, srv)
	cc, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	st, err := cc.OpenStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		// A session against a server waiting for our hello: it will block
		// reading the reply until the context fires.
		dev := deviceFor(t, history[0], 32<<10)
		// Block the hello from completing by cancelling mid-flight.
		time.Sleep(10 * time.Millisecond)
		_, err := Run(ctx, st, dev)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		_ = err // aborted or completed-before-cancel are both acceptable
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled session never returned")
	}
}

// TestOptionSurfaceCovers pins the option constructors to the Config
// fields they set, so a renamed field cannot silently orphan an option.
func TestOptionSurfaceCovers(t *testing.T) {
	var c Config
	c.apply([]Option{
		WithMessageTimeout(time.Second),
		WithFailureBudget(3),
		WithStreamLimit(9),
		WithInitialWindow(1 << 20),
		WithMaxFrame(2 << 10),
		WithAcceptBacklog(5),
		WithRequestFull(true),
		WithMaxAttempts(2),
		WithBaseBackoff(time.Millisecond),
		WithMaxBackoff(time.Minute),
		WithFullFallbackAfter(7),
		WithSeed(42),
	})
	want := fmt.Sprintf("%v", Config{
		MessageTimeout:    time.Second,
		FailureBudget:     3,
		StreamLimit:       9,
		InitialWindow:     1 << 20,
		MaxFrame:          2 << 10,
		AcceptBacklog:     5,
		RequestFull:       true,
		MaxAttempts:       2,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        time.Minute,
		FullFallbackAfter: 7,
		Seed:              42,
	})
	if got := fmt.Sprintf("%v", c); got != want {
		t.Fatalf("options applied %s, want %s", got, want)
	}
	st := c.muxSettings()
	if st.MaxStreams != 9 || st.InitialWindow != 1<<20 || st.MaxFrame != 2<<10 || st.AcceptBacklog != 5 {
		t.Fatalf("muxSettings projection wrong: %+v", st)
	}
}

// TestDeprecatedWrappersDelegate: the retired constructors must behave
// identically to their replacements.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	history := makeHistory(2, 4<<10, 68)
	srv, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	addr := serveTCP(t, srv)
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	ru := NewRunner(RunnerConfig{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	dev := deviceFor(t, history[0], 32<<10)
	if _, err := ru.Run(context.Background(), dial, dev); err != nil {
		t.Fatalf("deprecated NewRunner path: %v", err)
	}
	if !bytes.Equal(dev.Image(), srv.Current()) {
		t.Fatal("device image wrong via deprecated wrapper")
	}
	var _ *Runner = ru // the alias keeps old declarations compiling
}

func TestFlakyConnOverStream(t *testing.T) {
	// FlakyConn wraps a mux stream exactly like a raw conn: the fault
	// injector needs only net.Conn.
	history := makeHistory(2, 8<<10, 69)
	srv, err := NewServer(history)
	if err != nil {
		t.Fatal(err)
	}
	addr := serveTCP(t, srv)
	cc, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	cl := NewClient(
		WithMaxAttempts(8),
		WithSeed(7),
		WithSleep(func(context.Context, time.Duration) error { return nil }),
	)
	dials := 0
	dial := func(ctx context.Context) (net.Conn, error) {
		st, err := cc.OpenStream(ctx)
		if err != nil {
			return nil, err
		}
		dials++
		if dials <= 2 {
			// The first two attempts die mid-transfer; later ones run
			// clean, so the run converges by resuming where it stopped.
			return NewFlakyConn(st, FaultProfile{
				Seed:           uint64(7 + dials),
				DropAfterBytes: 64,
			}), nil
		}
		return st, nil
	}
	dev := deviceFor(t, history[0], 32<<10)
	rep, err := cl.Run(context.Background(), dial, dev)
	if err != nil {
		t.Fatalf("Run with faults over streams: %v (log: %v)", err, rep.FailureLog)
	}
	if !bytes.Equal(dev.Image(), srv.Current()) {
		t.Fatal("device did not converge through faulty streams")
	}
	if rep.Attempts < 2 {
		t.Fatalf("DropAfterBytes=3000 should force a retry, attempts=%d", rep.Attempts)
	}
}
