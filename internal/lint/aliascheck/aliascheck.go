// Package aliascheck enforces the ownership convention of the conversion
// API: a caller-provided slice (commands, reference bytes, options) handed
// to an exported function of the offset-bearing packages is owned by the
// caller for the duration of the call only. The implementation must not
// retain it in a field, send it to another goroutine, or mutate it —
// silent aliasing is exactly how an in-place batch conversion corrupts a
// neighbouring job's command list.
//
// Flagged, for an exported function with slice parameter p:
//
//   - x.field = p            (or = p[i:j], = append(p, ...))   retention
//   - ch <- p                (directly or inside a composite)  cross-goroutine
//   - go func() { ... p ... }()                                cross-goroutine
//   - p[i] = v, copy(p, ...)                                   mutation
//
// The defensive-copy idiom clears the taint: after
//
//	p = append([]T(nil), p...)
//
// (any reassignment whose right side does not alias p) later uses of p
// refer to the copy and are accepted.
package aliascheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"ipdelta/internal/lint/analysis"
)

// PackagePattern limits the analyzer to the packages whose exported API
// carries the in-place safety contract.
var PackagePattern = regexp.MustCompile(`(^|/)(codec|delta|inplace)$`)

// Analyzer is the aliascheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "aliascheck",
	Doc: "flags exported functions that retain, mutate, or share across goroutines " +
		"a caller-provided slice instead of copying it",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !PackagePattern.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			for _, p := range sliceParams(pass, fn) {
				checkParam(pass, fn, p)
			}
		}
	}
	return nil, nil
}

// sliceParams returns the parameter objects of fn with slice type
// (including variadic parameters, which are slices in the body).
func sliceParams(pass *analysis.Pass, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.ObjectOf(name)
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out = append(out, obj)
			}
		}
	}
	return out
}

func checkParam(pass *analysis.Pass, fn *ast.FuncDecl, param types.Object) {
	// clearedAt is the position after which the parameter no longer
	// aliases caller memory, because it was reassigned to a copy.
	clearedAt := token.Pos(-1)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.ObjectOf(id) == param {
				if i < len(as.Rhs) && aliases(pass, as.Rhs[i], param) {
					continue // p = p[1:] keeps the alias
				}
				if clearedAt == token.Pos(-1) || as.End() < clearedAt {
					clearedAt = as.End()
				}
			}
		}
		return true
	})
	tainted := func(pos token.Pos) bool {
		return clearedAt == token.Pos(-1) || pos < clearedAt
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				lhs = ast.Unparen(lhs)
				// Mutation through the parameter: p[i] = v.
				if ix, ok := lhs.(*ast.IndexExpr); ok && tainted(s.Pos()) &&
					aliases(pass, ix.X, param) {
					pass.Reportf(s.Pos(),
						"exported %s mutates caller-provided slice %q; operate on a copy",
						fn.Name.Name, param.Name())
				}
				// Retention: x.field = p (or an alias of p).
				if _, ok := lhs.(*ast.SelectorExpr); ok && i < len(s.Rhs) &&
					tainted(s.Pos()) && leaks(pass, s.Rhs[i], param) {
					pass.Reportf(s.Pos(),
						"exported %s stores caller-provided slice %q in a field; the caller can corrupt it after the call returns",
						fn.Name.Name, param.Name())
				}
			}
		case *ast.SendStmt:
			if tainted(s.Pos()) && leaks(pass, s.Value, param) {
				pass.Reportf(s.Pos(),
					"exported %s sends caller-provided slice %q to another goroutine; copy it first",
					fn.Name.Name, param.Name())
			}
		case *ast.GoStmt:
			if fl, ok := s.Call.Fun.(*ast.FuncLit); ok && tainted(s.Pos()) &&
				mentions(pass, fl.Body, param) {
				pass.Reportf(s.Pos(),
					"goroutine in exported %s captures caller-provided slice %q; copy it before spawning (%s = append([]T(nil), %s...))",
					fn.Name.Name, param.Name(), param.Name(), param.Name())
			}
		case *ast.ExprStmt:
			// copy(p, ...) writes through the parameter.
			if call, ok := s.X.(*ast.CallExpr); ok && tainted(s.Pos()) {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "copy" &&
					len(call.Args) == 2 && aliases(pass, call.Args[0], param) {
					pass.Reportf(s.Pos(),
						"exported %s mutates caller-provided slice %q via copy; operate on a copy",
						fn.Name.Name, param.Name())
				}
			}
		}
		return true
	})
}

// aliases reports whether e shares backing storage with the parameter:
// p itself, a subslice p[i:j], or append(p, ...).
func aliases(pass *analysis.Pass, e ast.Expr, param types.Object) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.ObjectOf(e) == param
	case *ast.SliceExpr:
		return aliases(pass, e.X, param)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return aliases(pass, e.Args[0], param)
		}
	}
	return false
}

// leaks reports whether storing or sending e publishes memory aliased to
// the parameter: an alias of p, or a composite literal carrying one
// (Job{Cmds: p}, []T{p}, &T{...}). append([]T(nil), p...) copies and does
// not leak.
func leaks(pass *analysis.Pass, e ast.Expr, param types.Object) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if leaks(pass, elt, param) {
				return true
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return leaks(pass, e.X, param)
		}
	}
	return aliases(pass, e, param)
}

// mentions reports whether body references the parameter at all.
func mentions(pass *analysis.Pass, body ast.Node, param types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == param {
			found = true
		}
		return !found
	})
	return found
}
