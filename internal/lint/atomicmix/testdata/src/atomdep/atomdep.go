// Test dependency package for atomicmix: publishes Gauge.Val atomically,
// exporting an AtomicFact the importing package's plain reads trip over.
// No plain access here, so this package is clean.
package atomdep

import "sync/atomic"

type Gauge struct {
	Val int64
}

func (g *Gauge) Set(v int64) {
	atomic.StoreInt64(&g.Val, v)
}
