module ipdelta

go 1.22
