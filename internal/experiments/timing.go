package experiments

import (
	"fmt"
	"io"
	"time"

	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/stats"
)

// TimingResult reproduces the §7 run-time comparison: the paper reports
// that in-place conversion completed in 56% of the time delta compression
// took, exceeded it on only 0.1% of inputs, and that the locally-minimum
// policy is on average as fast as constant-time.
type TimingResult struct {
	Pairs          int
	DiffTotal      time.Duration
	ConvertLM      time.Duration
	ConvertCT      time.Duration
	RatioLMMean    float64 // per-pair mean of convert(LM)/diff
	RatioCTMean    float64
	SlowerThanDiff int // pairs where LM conversion took longer than diff
	// Adversarial timings: the paper notes the locally-minimum policy can
	// run up to ~25% slower than constant-time on inputs with many long
	// cycles; the Figure 2 tree is exactly such an input.
	AdversarialLM time.Duration
	AdversarialCT time.Duration
}

// RunTiming measures differencing time against in-place conversion time
// per corpus pair.
func RunTiming(pairs []corpus.Pair, algo diff.Algorithm) (*TimingResult, error) {
	res := &TimingResult{Pairs: len(pairs)}
	var ratioLM, ratioCT stats.Aggregate
	for _, p := range pairs {
		start := time.Now()
		d, err := algo.Diff(p.Ref, p.Version)
		if err != nil {
			return nil, err
		}
		diffTime := time.Since(start)

		start = time.Now()
		if _, _, err := inplace.Convert(d, p.Ref, inplace.WithPolicy(graph.LocallyMinimum{})); err != nil {
			return nil, err
		}
		lmTime := time.Since(start)

		start = time.Now()
		if _, _, err := inplace.Convert(d, p.Ref, inplace.WithPolicy(graph.ConstantTime{})); err != nil {
			return nil, err
		}
		ctTime := time.Since(start)

		res.DiffTotal += diffTime
		res.ConvertLM += lmTime
		res.ConvertCT += ctTime
		if diffTime > 0 {
			ratioLM.Add(float64(lmTime) / float64(diffTime))
			ratioCT.Add(float64(ctTime) / float64(diffTime))
		}
		if lmTime > diffTime {
			res.SlowerThanDiff++
		}
	}
	res.RatioLMMean = ratioLM.Mean()
	res.RatioCTMean = ratioCT.Mean()

	// Cycle-heavy adversarial input: deep Figure 2 tree.
	tree := inplace.AdversarialDelta(12, 32)
	ref := make([]byte, tree.RefLen)
	start := time.Now()
	if _, _, err := inplace.Convert(tree, ref, inplace.WithPolicy(graph.LocallyMinimum{})); err != nil {
		return nil, err
	}
	res.AdversarialLM = time.Since(start)
	start = time.Now()
	if _, _, err := inplace.Convert(tree, ref, inplace.WithPolicy(graph.ConstantTime{})); err != nil {
		return nil, err
	}
	res.AdversarialCT = time.Since(start)
	return res, nil
}

// Render prints the timing comparison.
func (r *TimingResult) Render(w io.Writer) error {
	t := stats.Table{
		Title:   fmt.Sprintf("§7 run time — delta compression vs in-place conversion (%d pairs)", r.Pairs),
		Headers: []string{"phase", "total time", "fraction of diff time"},
	}
	frac := func(d time.Duration) string {
		if r.DiffTotal == 0 {
			return "-"
		}
		return stats.Pct(float64(d) / float64(r.DiffTotal))
	}
	t.AddRow("delta compression (linear diff)", r.DiffTotal.String(), "100.0%")
	t.AddRow("in-place conversion (locally minimum)", r.ConvertLM.String(), frac(r.ConvertLM))
	t.AddRow("in-place conversion (constant time)", r.ConvertCT.String(), frac(r.ConvertCT))
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"per-pair mean conversion/diff ratio: locally-minimum %.2f, constant-time %.2f; conversion slower than diff on %d/%d pairs\n",
		r.RatioLMMean, r.RatioCTMean, r.SlowerThanDiff, r.Pairs); err != nil {
		return err
	}
	ratio := 0.0
	if r.AdversarialCT > 0 {
		ratio = float64(r.AdversarialLM)/float64(r.AdversarialCT) - 1
	}
	_, err := fmt.Fprintf(w,
		"cycle-heavy adversarial input (Figure 2 tree): locally-minimum %v vs constant-time %v (%+.0f%%)\n",
		r.AdversarialLM.Round(time.Microsecond), r.AdversarialCT.Round(time.Microsecond), ratio*100)
	return err
}
