package graph

// SortResult is the outcome of a cycle-breaking topological sort.
type SortResult struct {
	// Order lists the surviving vertices so that for every edge u→v with
	// both endpoints surviving, u precedes v.
	Order []int
	// Removed lists the vertices deleted to break cycles, in deletion
	// order.
	Removed []int
	// CyclesBroken counts the cycles encountered.
	CyclesBroken int
	// CycleVertices sums the lengths of the cycles examined; for the
	// locally-minimum policy this is proportional to the extra work done.
	CycleVertices int
	// RemovedCost sums cost(v) over removed vertices — the compression
	// lost to cycle breaking.
	RemovedCost int64
}

// vertex colors for the DFS.
const (
	white   = 0 // unvisited
	gray    = 1 // on the DFS path
	black   = 2 // finished
	deleted = 3 // removed to break a cycle
)

// topoFrame is one entry of the explicit DFS stack.
type topoFrame struct {
	v    int32
	edge int // next adjacency index to examine
}

// TopoScratch holds the working state of the enhanced topological sort so
// repeated sorts reuse one set of buffers. In steady state a Sort performs
// no allocations. The zero value is ready for use; a TopoScratch must not
// be used concurrently.
type TopoScratch struct {
	color     []byte
	stack     []topoFrame
	postorder []int
	cycle     []int
	res       SortResult
}

// TopoSort runs a depth-first topological sort over g, detecting cycles as
// they are closed and deleting one vertex per cycle chosen by the policy
// (§4.2 of the paper, "enhanced topological sort"). Roots are explored in
// ascending vertex order; since package inplace numbers vertices by write
// offset, ties are resolved in write order just as the paper's algorithm
// sorts its copy commands.
//
// The surviving subgraph is totally ordered: for every edge u→v between
// survivors, u appears before v in Order, satisfying Equation 2 when the
// vertices are copy commands and edges are potential WR conflicts.
func TopoSort(g Graph, cost CostFunc, policy Policy) *SortResult {
	var ts TopoScratch
	return ts.Sort(g, cost, policy)
}

// Sort is TopoSort over the scratch's reusable buffers. The returned
// result is owned by the scratch and remains valid only until the next
// Sort call.
func (ts *TopoScratch) Sort(g Graph, cost CostFunc, policy Policy) *SortResult {
	n := g.NumVertices()
	ts.color = growBytes(ts.color, n)
	ts.stack = ts.stack[:0]
	ts.postorder = ts.postorder[:0]
	ts.res = SortResult{Order: ts.res.Order[:0], Removed: ts.res.Removed[:0]}
	color, res := ts.color, &ts.res

	push := func(v int32) {
		color[v] = gray
		ts.stack = append(ts.stack, topoFrame{v: v})
	}

	for root := 0; root < n; root++ {
		if color[root] != white {
			continue
		}
		push(int32(root))
		for len(ts.stack) > 0 {
			top := &ts.stack[len(ts.stack)-1]
			succ := g.Succ(int(top.v))
			if top.edge >= len(succ) {
				color[top.v] = black
				ts.postorder = append(ts.postorder, int(top.v))
				ts.stack = ts.stack[:len(ts.stack)-1]
				continue
			}
			w := succ[top.edge]
			top.edge++
			switch color[w] {
			case white:
				push(w)
			case gray:
				// Edge top.v → w closes a cycle running from w along the
				// DFS path to top.v. Collect it in path order.
				at := len(ts.stack) - 1
				for ts.stack[at].v != w {
					at--
				}
				ts.cycle = ts.cycle[:0]
				for k := at; k < len(ts.stack); k++ {
					ts.cycle = append(ts.cycle, int(ts.stack[k].v))
				}
				res.CyclesBroken++
				res.CycleVertices += len(ts.cycle)
				victim := policy.SelectVictim(ts.cycle, cost)
				res.Removed = append(res.Removed, victim)
				res.RemovedCost += cost(victim)
				color[victim] = deleted

				// Unwind the DFS path back to just below the victim. The
				// vertices above the victim return to white with fresh
				// edge iterators; they will be re-explored along paths
				// that avoid the deleted vertex.
				vat := at
				for ts.stack[vat].v != int32(victim) {
					vat++
				}
				for k := vat + 1; k < len(ts.stack); k++ {
					color[ts.stack[k].v] = white
				}
				ts.stack = ts.stack[:vat]
			}
		}
	}

	// Reverse postorder = topological order.
	for k := len(ts.postorder) - 1; k >= 0; k-- {
		res.Order = append(res.Order, ts.postorder[k])
	}
	return res
}

// VerifyTopological checks that order together with removed is a valid
// outcome for g: every vertex appears exactly once in order or removed,
// and every edge between surviving vertices goes forward in order. It
// returns false otherwise. Intended for tests and self-checks.
func VerifyTopological(g Graph, res *SortResult) bool {
	n := g.NumVertices()
	pos := make([]int, n)
	for k := range pos {
		pos[k] = -1
	}
	seen := 0
	for k, v := range res.Order {
		if v < 0 || v >= n || pos[v] != -1 {
			return false
		}
		pos[v] = k
		seen++
	}
	removed := make([]bool, n)
	for _, v := range res.Removed {
		if v < 0 || v >= n || removed[v] || pos[v] != -1 {
			return false
		}
		removed[v] = true
		seen++
	}
	if seen != n {
		return false
	}
	for u := 0; u < n; u++ {
		if removed[u] {
			continue
		}
		for _, w := range g.Succ(u) {
			if removed[w] {
				continue
			}
			if pos[u] >= pos[w] {
				return false
			}
		}
	}
	return true
}
