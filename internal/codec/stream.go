package codec

import (
	"fmt"
	"io"

	"ipdelta/internal/delta"
)

// NextStreaming returns the next command without materializing add data in
// memory: for an add command, the returned command has nil Data and the
// returned reader streams exactly Length payload bytes. The reader must be
// fully consumed (or the decoder Skip'ped) before the next call; for copy
// commands the reader is nil.
//
// This is the API a limited-memory device uses: combined with
// delta.ApplyInPlace-style chunked writes, a delta of any size is applied
// with O(1) working memory.
func (d *Decoder) NextStreaming() (delta.Command, io.Reader, error) {
	if d.pending > 0 {
		return delta.Command{}, nil, fmt.Errorf("codec: previous add payload not consumed (%d bytes left)", d.pending)
	}
	d.streaming = true
	c, err := d.Next()
	d.streaming = false
	if err != nil {
		return delta.Command{}, nil, err
	}
	if c.Op == delta.OpAdd {
		d.pending = c.Length
		return c, &payloadReader{d: d}, nil
	}
	return c, nil, nil
}

// payloadReader streams the pending add payload through the decoder's CRC.
type payloadReader struct {
	d *Decoder
}

// Read implements io.Reader over the remaining payload bytes.
func (p *payloadReader) Read(b []byte) (int, error) {
	if p.d.pending == 0 {
		return 0, io.EOF
	}
	if int64(len(b)) > p.d.pending {
		b = b[:p.d.pending]
	}
	if err := p.d.r.readFull(b); err != nil {
		return 0, fmt.Errorf("%w: add payload", ErrTruncated)
	}
	p.d.pending -= int64(len(b))
	return len(b), nil
}
