// Package loader enumerates and typechecks the module's packages for the
// ipvet analyzers. It is a small, offline replacement for
// golang.org/x/tools/go/packages: files are parsed with go/parser and
// typechecked with go/types using the compiler's source importer, so the
// whole pipeline works from a clean checkout with no module proxy.
//
// The loader also supports an import-path overlay, mapping synthetic
// import paths to directories outside the module layout. The analysis
// tests use it to typecheck multi-package testdata trees — a package
// "b" in testdata/src/b importing "a" in testdata/src/a — which is what
// lets the interprocedural analyzers exercise cross-package facts against
// self-contained fixtures.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked package.
type Package struct {
	// PkgPath is the import path ("ipdelta/internal/codec").
	PkgPath string
	// Dir is the absolute directory holding the package's files.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	// TypesInfo has Types, Defs, Uses and Selections populated for every
	// file in Files.
	TypesInfo *types.Info

	// ignores maps "filename:line" to the analyzer names suppressed on
	// that line by //ipvet:ignore comments ("*" suppresses all).
	ignores map[string]map[string]bool
}

// Ignored reports whether a diagnostic from the named analyzer at pos is
// suppressed by an //ipvet:ignore comment covering that line. Suppression
// is analyzer-scoped: a directive mutes exactly the analyzers it names
// (or every analyzer, for the explicit "*"), never its neighbours on the
// same line.
func (p *Package) Ignored(analyzer string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	names := p.ignores[fmt.Sprintf("%s:%d", position.Filename, position.Line)]
	return names != nil && (names["*"] || names[analyzer])
}

// Loader typechecks packages with a shared FileSet and importer so that
// dependencies are only typechecked once per process.
type Loader struct {
	fset    *token.FileSet
	imp     types.Importer
	modRoot string
	modPath string
	overlay map[string]string   // import path -> directory
	cache   map[string]*Package // by absolute dir
}

// New locates the enclosing module (walking up from dir, "" meaning the
// working directory) and returns a loader for it.
func New(dir string) (*Loader, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		fset:    fset,
		modRoot: root,
		modPath: path,
		overlay: map[string]string{},
		cache:   map[string]*Package{},
	}
	// The compiler's source importer resolves GOROOT and module-internal
	// paths; the overlay wrapper intercepts synthetic testdata paths
	// before they reach it.
	l.imp = &overlayImporter{l: l, fallback: importer.ForCompiler(fset, "source", nil)}
	return l, nil
}

// ModuleRoot returns the directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// AddOverlay maps the import path to a directory: subsequent imports of
// path (from any package this loader typechecks) resolve to the package
// in dir instead of going through the source importer. Overlay packages
// are loaded with LoadDir(dir, path) and shared with direct loads of the
// same directory.
func (l *Loader) AddOverlay(path, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	l.overlay[path] = abs
}

// overlayImporter resolves overlay paths and module-internal paths
// through the loader itself, and everything else (the standard library)
// through the compiler's source importer. Routing module-internal imports
// through the loader is what gives every loaded package one shared object
// world: a fact exported on an object of ipdelta/internal/delta while that
// package is analyzed is found again when ipdelta/internal/diff's syntax
// resolves to the very same types.Object. If the source importer
// typechecked dependencies instead, it would build parallel objects and
// cross-package facts would silently miss.
type overlayImporter struct {
	l        *Loader
	fallback types.Importer
}

func (oi *overlayImporter) Import(path string) (*types.Package, error) {
	dir, ok := oi.l.overlay[path]
	if !ok {
		dir, ok = oi.l.moduleDir(path)
	}
	if ok {
		pkg, err := oi.l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return oi.fallback.Import(path)
}

// moduleDir maps a module-internal import path to the directory holding
// its source, or reports false for external paths.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.modPath {
		return l.modRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// findModule walks up from dir to the first go.mod and parses its module
// path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("loader: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load resolves patterns to packages. A pattern is a directory path,
// optionally ending in "/..." to include every package under it (testdata,
// hidden and underscore-prefixed directories are skipped, matching the go
// tool's rules).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					dirs = append(dirs, p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			dirs = append(dirs, filepath.Clean(pat))
		}
	}
	var pkgs []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		if seen[abs] {
			continue
		}
		seen[abs] = true
		pkg, err := l.LoadDir(dir, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// LoadDir parses and typechecks the single package in dir. importPath
// overrides the path derived from the module layout; analysis tests use it
// to load self-contained testdata packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.cache[abs]; ok && (importPath == "" || p.PkgPath == importPath) {
		return p, nil
	}
	if importPath == "" {
		rel, err := filepath.Rel(l.modRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("loader: %s is outside module %s", abs, l.modPath)
		}
		if rel == "." {
			importPath = l.modPath
		} else {
			importPath = l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	srcs := map[string][]byte{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		filename := filepath.Join(abs, name)
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, filename, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		srcs[filename] = src
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: typecheck %s: %w", importPath, err)
	}
	pkg := &Package{
		PkgPath:   importPath,
		Dir:       abs,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		ignores:   collectIgnores(l.fset, files, srcs),
	}
	l.cache[abs] = pkg
	return pkg, nil
}

// collectIgnores indexes //ipvet:ignore comments. Syntax:
//
//	x := int(v) //ipvet:ignore offsetsafe -- reason
//	//ipvet:ignore offsetsafe,aliascheck -- reason
//	y := int(w)
//
// A trailing directive (code precedes it on the line) covers exactly its
// own line; a standalone directive (alone on its line) covers exactly the
// next line. Suppression is analyzer-scoped: the directive must name the
// analyzers to mute, comma- or space-separated, and only those analyzers
// are silenced — "*" is the explicit, greppable opt-out for every
// analyzer. A bare "//ipvet:ignore" with no names suppresses nothing;
// earlier versions treated it as a wildcard, which made one analyzer's
// suppression silently swallow every other finding on the line.
func collectIgnores(fset *token.FileSet, files []*ast.File, srcs map[string][]byte) map[string]map[string]bool {
	ignores := map[string]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//ipvet:ignore")
				if !ok {
					continue
				}
				// Reject "//ipvet:ignoreX": the directive must be
				// followed by a separator or end of comment.
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue
				}
				if names, _, found := strings.Cut(text, "--"); found {
					text = names
				}
				names := map[string]bool{}
				for _, n := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					names[n] = true
				}
				if len(names) == 0 {
					continue // unscoped directive: suppresses nothing
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if standaloneComment(srcs[pos.Filename], pos.Offset) {
					line = pos.Line + 1
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, line)
				if ignores[key] == nil {
					ignores[key] = map[string]bool{}
				}
				for n := range names {
					ignores[key][n] = true
				}
			}
		}
	}
	return ignores
}

// standaloneComment reports whether only whitespace precedes the comment
// starting at offset on its line.
func standaloneComment(src []byte, offset int) bool {
	if src == nil || offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // first line of the file
}
