package mux

import (
	"io"
	"sync"
)

// ring is a stream's receive buffer: a byte ring that grows lazily from
// a small pooled slab toward the stream's advertised window. Flow
// control guarantees the peer never has more than the window in flight,
// so a full-window ring always has room for every arriving frame; most
// streams never grow past the smallest slab because the application
// drains as data arrives.
type ring struct {
	buf  []byte
	head int // index of the first unread byte
	n    int // unread byte count
}

// slab size classes for pooled ring storage. Sized so a 10k-session load
// run does not hold 10k full windows: an idle update stream lives in the
// 4 KiB class, and only streams that actually buffer a large delta climb
// the ladder.
var slabClasses = [...]int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// slabPools pools ring storage per size class.
var slabPools [len(slabClasses)]sync.Pool

// classFor returns the smallest slab class index holding n bytes, or -1
// when n exceeds every class (the caller allocates exactly).
func classFor(n int) int {
	for k, c := range slabClasses {
		if n <= c {
			return k
		}
	}
	return -1
}

// getSlab returns a slab with capacity ≥ n.
func getSlab(n int) []byte {
	k := classFor(n)
	if k < 0 {
		return make([]byte, n)
	}
	if s, ok := slabPools[k].Get().(*[]byte); ok {
		return *s
	}
	return make([]byte, slabClasses[k])
}

// putSlab returns slab storage to its pool, if it belongs to a class.
func putSlab(b []byte) {
	if len(b) == 0 {
		return
	}
	for k, c := range slabClasses {
		if len(b) == c {
			slabPools[k].Put(&b)
			return
		}
	}
}

// free reports how many more bytes the ring can hold at its current
// size.
//
//ipvet:allocfree
func (q *ring) free() int { return len(q.buf) - q.n }

// grow ensures the ring can hold need more bytes, moving to a larger
// slab if required. The caller bounds need by the stream window.
func (q *ring) grow(need int) {
	if q.free() >= need {
		return
	}
	nb := getSlab(q.n + need)
	// Unwrap into the new slab.
	tail := len(q.buf) - q.head
	if tail > q.n {
		tail = q.n
	}
	copy(nb, q.buf[q.head:q.head+tail])
	copy(nb[tail:], q.buf[:q.n-tail])
	putSlab(q.buf)
	q.buf = nb
	q.head = 0
}

// fill reads exactly n bytes from r into the ring. The caller must have
// ensured capacity via grow.
func (q *ring) fill(r io.Reader, n int) error {
	for n > 0 {
		end := (q.head + q.n) % len(q.buf)
		span := len(q.buf) - end
		if end < q.head {
			span = q.head - end
		}
		if span > n {
			span = n
		}
		if _, err := io.ReadFull(r, q.buf[end:end+span]); err != nil {
			return err
		}
		q.n += span
		n -= span
	}
	return nil
}

// read copies up to len(p) buffered bytes into p.
//
//ipvet:allocfree
func (q *ring) read(p []byte) int {
	total := 0
	for q.n > 0 && total < len(p) {
		span := len(q.buf) - q.head
		if span > q.n {
			span = q.n
		}
		if span > len(p)-total {
			span = len(p) - total
		}
		copy(p[total:], q.buf[q.head:q.head+span])
		q.head = (q.head + span) % len(q.buf)
		q.n -= span
		total += span
	}
	return total
}

// release returns the ring's storage to the pool.
func (q *ring) release() {
	putSlab(q.buf)
	q.buf = nil
	q.head = 0
	q.n = 0
}
