//go:build race

package mux

// raceEnabled reports whether the race detector is compiled in. Allocation
// gates skip under it: race instrumentation adds shadow allocations that
// AllocsPerRun counts against the gate.
const raceEnabled = true
