package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func writeTemp(t *testing.T, dir, name string, content []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func makeVersions(t *testing.T, n int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	base := make([]byte, 8<<10)
	rng.Read(base)
	out := [][]byte{base}
	for k := 1; k < n; k++ {
		v := append([]byte(nil), out[k-1]...)
		for e := 0; e < 40; e++ {
			v[rng.Intn(len(v))] ^= 0x3C
		}
		out = append(out, v)
	}
	return out
}

func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	versions := makeVersions(t, 4)
	storePath := filepath.Join(dir, "releases.ipst")

	basePath := writeTemp(t, dir, "v0.img", versions[0])
	if err := run([]string{"init", "-store", storePath, "-base", basePath}); err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(versions); k++ {
		p := writeTemp(t, dir, "v.img", versions[k])
		if err := run([]string{"append", "-store", storePath, "-version", p}); err != nil {
			t.Fatalf("append %d: %v", k, err)
		}
	}
	if err := run([]string{"info", "-store", storePath}); err != nil {
		t.Fatal(err)
	}

	// Extract every version and compare.
	for k := range versions {
		outPath := filepath.Join(dir, "out.img")
		if err := run([]string{"extract", "-store", storePath, "-index", strconv.Itoa(k), "-out", outPath}); err != nil {
			t.Fatalf("extract %d: %v", k, err)
		}
		got, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, versions[k]) {
			t.Fatalf("extracted version %d differs", k)
		}
	}

	// Direct delta 0 -> newest, then in-place variant.
	deltaPath := filepath.Join(dir, "d.ipd")
	if err := run([]string{"delta", "-store", storePath, "-from", "0", "-out", deltaPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"delta", "-store", storePath, "-from", "0", "-out", deltaPath, "-inplace"}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(deltaPath); err != nil || fi.Size() == 0 {
		t.Fatalf("in-place delta missing: %v", err)
	}
}

func TestStoreUsageErrors(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"init"},
		{"append"},
		{"info"},
		{"extract"},
		{"delta"},
		{"init", "-store", filepath.Join(dir, "s"), "-base", "missing.img"},
		{"info", "-store", "missing.ipst"},
		{"append", "-store", "missing.ipst", "-version", "missing.img"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestStoreDeltaRangeErrors(t *testing.T) {
	dir := t.TempDir()
	versions := makeVersions(t, 2)
	storePath := filepath.Join(dir, "s.ipst")
	basePath := writeTemp(t, dir, "v0.img", versions[0])
	if err := run([]string{"init", "-store", storePath, "-base", basePath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"extract", "-store", storePath, "-index", "5", "-out", filepath.Join(dir, "x")}); err == nil {
		t.Fatal("out-of-range extract accepted")
	}
	if err := run([]string{"delta", "-store", storePath, "-from", "3", "-out", filepath.Join(dir, "x")}); err == nil {
		t.Fatal("out-of-range delta accepted")
	}
}

func TestStoreRollbackCommand(t *testing.T) {
	dir := t.TempDir()
	versions := makeVersions(t, 3)
	storePath := filepath.Join(dir, "s.ipst")
	basePath := writeTemp(t, dir, "v0.img", versions[0])
	if err := run([]string{"init", "-store", storePath, "-base", basePath}); err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(versions); k++ {
		p := writeTemp(t, dir, "v.img", versions[k])
		if err := run([]string{"append", "-store", storePath, "-version", p}); err != nil {
			t.Fatal(err)
		}
	}
	rbPath := filepath.Join(dir, "rb.ipd")
	if err := run([]string{"rollback", "-store", storePath, "-to", "0", "-out", rbPath}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(rbPath); err != nil || fi.Size() == 0 {
		t.Fatalf("rollback delta missing: %v", err)
	}
	if err := run([]string{"rollback", "-store", storePath, "-to", "9", "-out", rbPath}); err == nil {
		t.Fatal("out-of-range rollback accepted")
	}
	if err := run([]string{"rollback"}); err == nil {
		t.Fatal("missing flags accepted")
	}
}
