package diff

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"ipdelta/internal/chunk"
	"ipdelta/internal/delta"
	"ipdelta/internal/obs"
)

// RecipeDiffer computes deltas at chunk granularity: two versions are
// compared as ordered chunk recipes, every chunk the new version shares
// with the old becomes a whole-chunk copy command (merged with its
// neighbours when the source bytes are contiguous), and only the
// unmatched runs in between are handed to the Karp–Rabin byte differ —
// against a bounded window of old bytes around the gap, never the whole
// file. For a multi-GiB version pair with localized churn this turns the
// O(L_R + L_V) full scan into work proportional to the churn, and caps
// working memory at O(window + max chunk) regardless of file size.
type RecipeDiffer struct {
	seedLen   int
	maxBits   uint
	windowCap int
	met       *recipeMetrics
	pool      sync.Pool // of *recipeState
}

// DefaultRecipeWindow bounds the old-file context materialized around one
// unmatched run, and the size of the new-run segments scanned against it.
const DefaultRecipeWindow = 4 << 20

// recipeMetrics holds the pre-resolved handles of an observed
// RecipeDiffer.
type recipeMetrics struct {
	diffs      *obs.Counter // DiffRecipes calls
	chunkCopy  *obs.Counter // bytes covered by whole-chunk copies
	runBytes   *obs.Counter // new bytes that fell to the byte differ
	runWindows *obs.Counter // old-context windows materialized
}

func resolveRecipeMetrics(r *obs.Registry) *recipeMetrics {
	return &recipeMetrics{
		diffs:      r.Counter("ipdelta_recipe_diff_total"),
		chunkCopy:  r.Counter("ipdelta_recipe_diff_chunk_copy_bytes_total"),
		runBytes:   r.Counter("ipdelta_recipe_diff_run_bytes_total"),
		runWindows: r.Counter("ipdelta_recipe_diff_windows_total"),
	}
}

// recipeState is one diff's working memory: the fingerprint table, the
// emitter, and the two bounded materialization buffers. Pooled per
// RecipeDiffer so steady-state calls reallocate none of it.
type recipeState struct {
	table  krTable
	e      emitter
	oldWin []byte // materialized old context, <= windowCap
	newSeg []byte // materialized new-run segment, <= windowCap
}

// RecipeOption customizes a RecipeDiffer.
type RecipeOption func(*RecipeDiffer)

// WithRecipeWindow caps the old-file context (and new-run segment) the
// byte differ sees per unmatched run; <= 0 keeps the default. Smaller
// windows bound memory tighter at some compression cost on large
// rewrites.
func WithRecipeWindow(n int) RecipeOption {
	return func(rd *RecipeDiffer) {
		if n > 0 {
			rd.windowCap = n
		}
	}
}

// WithRecipeSeedLen sets the seed length of the run differ (default 16).
func WithRecipeSeedLen(p int) RecipeOption {
	return func(rd *RecipeDiffer) {
		if p < 4 {
			p = 4
		}
		rd.seedLen = p
	}
}

// WithRecipeObserver attaches a metrics registry.
func WithRecipeObserver(r *obs.Registry) RecipeOption {
	return func(rd *RecipeDiffer) { rd.met = resolveRecipeMetrics(r) }
}

// NewRecipeDiffer returns a recipe differ with the options applied.
func NewRecipeDiffer(opts ...RecipeOption) *RecipeDiffer {
	rd := &RecipeDiffer{seedLen: 16, maxBits: 18, windowCap: DefaultRecipeWindow}
	for _, o := range opts {
		o(rd)
	}
	return rd
}

// DiffRecipes computes a delta that materializes the file newR describes
// from the file oldR describes, resolving chunk content through src.
// The result is equivalent to a full-image diff under Apply — the
// acceptance property the tests pin — while touching only matched-chunk
// metadata plus a bounded byte window per unmatched run.
func (rd *RecipeDiffer) DiffRecipes(oldR, newR chunk.Recipe, src chunk.Source) (*delta.Delta, error) {
	st, _ := rd.pool.Get().(*recipeState)
	if st == nil {
		st = &recipeState{}
	}
	st.e.reset()

	// First-occurrence offset of every old chunk, plus cumulative starts
	// for window materialization. O(#old chunks) metadata, not bytes.
	oldOff := make(map[chunk.ID]int64, len(oldR.Chunks))
	oldStarts := make([]int64, len(oldR.Chunks)+1)
	var off int64
	for i, c := range oldR.Chunks {
		oldStarts[i] = off
		if _, ok := oldOff[c.ID]; !ok {
			oldOff[c.ID] = off
		}
		off += c.Length
	}
	oldStarts[len(oldR.Chunks)] = off

	var pendFrom, pendLen int64 // pending merged whole-chunk copy
	runStart := -1              // first new-chunk index of the pending unmatched run
	gapLo := int64(0)           // old offset where the current gap's context begins
	var newOff int64

	flushCopy := func() {
		if pendLen > 0 {
			st.e.copyCmd(pendFrom, pendLen)
			if rd.met != nil {
				rd.met.chunkCopy.Add(pendLen)
			}
			pendLen = 0
		}
	}

	for i := 0; i <= len(newR.Chunks); i++ {
		var c chunk.Ref
		var at int64
		matched := false
		if i < len(newR.Chunks) {
			c = newR.Chunks[i]
			at, matched = oldOff[c.ID]
		}
		if !matched && i < len(newR.Chunks) {
			if runStart < 0 {
				runStart = i
			}
			newOff += c.Length
			continue
		}
		// A match (or the end sentinel) closes any pending unmatched run.
		if runStart >= 0 {
			flushCopy()
			gapHi := oldStarts[len(oldR.Chunks)]
			if matched {
				gapHi = at
			}
			if err := rd.diffRun(st, newR, runStart, i, oldR, oldStarts, src, gapLo, gapHi); err != nil {
				rd.pool.Put(st)
				return nil, err
			}
			runStart = -1
		}
		if !matched {
			break // end sentinel
		}
		if pendLen > 0 && at == pendFrom+pendLen {
			pendLen += c.Length // contiguous in the old file: extend
		} else {
			flushCopy()
			pendFrom, pendLen = at, c.Length
		}
		gapLo = at + c.Length
		newOff += c.Length
	}
	flushCopy()

	d := &delta.Delta{
		RefLen:     oldStarts[len(oldR.Chunks)],
		VersionLen: newOff,
		Commands:   st.e.finish(),
	}
	rd.pool.Put(st)
	if rd.met != nil {
		rd.met.diffs.Inc()
	}
	return d, nil
}

// diffRun emits commands covering new chunks [a, b) — a run that matched
// nothing chunk-wise — by scanning their bytes against the old context
// window [gapLo, gapHi), both sides capped at windowCap. Copies found by
// the scan are rebased from window-relative to absolute old offsets.
func (rd *RecipeDiffer) diffRun(st *recipeState, newR chunk.Recipe, a, b int, oldR chunk.Recipe, oldStarts []int64, src chunk.Source, gapLo, gapHi int64) error {
	winLen := gapHi - gapLo
	if winLen > int64(rd.windowCap) {
		winLen = int64(rd.windowCap)
	}
	haveTable := false
	if winLen >= int64(rd.seedLen) {
		var err error
		st.oldWin, err = appendRecipeRange(st.oldWin[:0], oldR, oldStarts, src, gapLo, gapLo+winLen)
		if err != nil {
			return err
		}
		stride := strideFor(len(st.oldWin) - rd.seedLen + 1)
		indexed := (len(st.oldWin) - rd.seedLen + 1 + stride - 1) / stride
		st.table.prepare(tableBitsFor(rd.maxBits, indexed))
		buildTable(&st.table, st.oldWin, rd.seedLen, 0, len(st.oldWin)-rd.seedLen+1, stride)
		haveTable = true
		if rd.met != nil {
			rd.met.runWindows.Inc()
		}
	}
	// Stream the run's new bytes through bounded segments.
	st.newSeg = st.newSeg[:0]
	flushSeg := func() {
		if len(st.newSeg) == 0 {
			return
		}
		if rd.met != nil {
			rd.met.runBytes.Add(int64(len(st.newSeg)))
		}
		if !haveTable {
			st.e.literal(st.newSeg)
		} else {
			mark := len(st.e.cmds)
			scanRange(&st.table, &st.e, st.oldWin, st.newSeg, rd.seedLen, 0, len(st.newSeg), 0)
			// scanRange emitted copies relative to the window; rebase them
			// to absolute old-file offsets. Adds stash arena offsets in
			// From and must not be touched.
			for k := mark; k < len(st.e.cmds); k++ {
				if st.e.cmds[k].Op == delta.OpCopy {
					st.e.cmds[k].From += gapLo
				}
			}
		}
		st.newSeg = st.newSeg[:0]
	}
	for i := a; i < b; i++ {
		c := newR.Chunks[i]
		data, err := src.Chunk(c.ID)
		if err != nil {
			return fmt.Errorf("diff: recipe run chunk %d (%s): %w", i, c.ID, err)
		}
		if int64(len(data)) != c.Length {
			return fmt.Errorf("diff: recipe run chunk %d (%s): content length %d contradicts recipe %d", i, c.ID, len(data), c.Length)
		}
		st.newSeg = append(st.newSeg, data...)
		if len(st.newSeg) >= rd.windowCap {
			flushSeg()
		}
	}
	flushSeg()
	return nil
}

// appendRecipeRange materializes byte range [lo, hi) of the file r
// describes into dst, resolving chunks through src.
func appendRecipeRange(dst []byte, r chunk.Recipe, starts []int64, src chunk.Source, lo, hi int64) ([]byte, error) {
	i := sort.Search(len(r.Chunks), func(k int) bool { return starts[k+1] > lo })
	for ; i < len(r.Chunks) && starts[i] < hi; i++ {
		data, err := src.Chunk(r.Chunks[i].ID)
		if err != nil {
			return nil, fmt.Errorf("diff: recipe range chunk %d (%s): %w", i, r.Chunks[i].ID, err)
		}
		if int64(len(data)) != r.Chunks[i].Length {
			return nil, fmt.Errorf("diff: recipe range chunk %d (%s): content length %d contradicts recipe %d", i, r.Chunks[i].ID, len(data), r.Chunks[i].Length)
		}
		a, b := int64(0), int64(len(data))
		if lo > starts[i] {
			a = lo - starts[i]
		}
		if starts[i]+b > hi {
			b = hi - starts[i]
		}
		dst = append(dst, data[a:b]...)
	}
	return dst, nil
}

// RecipeAlgo adapts the recipe differ to the byte-level Algorithm
// interface: inputs are chunked into a shared dedup store on first
// sight (keyed by whole-input SHA-256, so a server diffing many clients
// against the same reference ingests it once) and subsequent diffs run
// over recipes. It is the "recipe" entry in ByName, which is how
// netupdate sessions and ipstore serve source their deltas from chunk
// recipes.
type RecipeAlgo struct {
	ck *chunk.Chunker
	cs *chunk.Store
	rd *RecipeDiffer

	mu      sync.Mutex
	recipes map[[sha256.Size]byte]chunk.Recipe
	order   [][sha256.Size]byte // FIFO bound on cached (pinned) recipes
	maxKeep int
}

// RecipeAlgoOption customizes a RecipeAlgo.
type RecipeAlgoOption func(*RecipeAlgo)

// WithRecipeStore shares an existing chunk store (and its dedup state)
// instead of a private one.
func WithRecipeStore(cs *chunk.Store) RecipeAlgoOption {
	return func(a *RecipeAlgo) { a.cs = cs }
}

// WithRecipeDiffer substitutes a configured differ.
func WithRecipeDiffer(rd *RecipeDiffer) RecipeAlgoOption {
	return func(a *RecipeAlgo) { a.rd = rd }
}

// WithRecipeCacheSize bounds how many distinct inputs stay pinned as
// recipes (default 8); older entries release their chunk references to
// the store's LRU.
func WithRecipeCacheSize(n int) RecipeAlgoOption {
	return func(a *RecipeAlgo) {
		if n > 0 {
			a.maxKeep = n
		}
	}
}

// NewRecipeAlgo returns a recipe-backed Algorithm with default chunking
// parameters and a private bounded chunk store.
func NewRecipeAlgo(opts ...RecipeAlgoOption) *RecipeAlgo {
	ck, err := chunk.NewChunker(chunk.Params{})
	if err != nil {
		panic(err) // defaults are statically valid
	}
	a := &RecipeAlgo{
		ck:      ck,
		rd:      NewRecipeDiffer(),
		recipes: make(map[[sha256.Size]byte]chunk.Recipe),
		maxKeep: 8,
	}
	for _, o := range opts {
		o(a)
	}
	if a.cs == nil {
		a.cs = chunk.NewStore()
	}
	return a
}

// Name implements Algorithm.
func (a *RecipeAlgo) Name() string { return "recipe" }

// Diff implements Algorithm: chunk (or recall) both inputs, then diff
// their recipes.
func (a *RecipeAlgo) Diff(ref, version []byte) (*delta.Delta, error) {
	ro := a.recipeFor(ref)
	rn := a.recipeFor(version)
	return a.rd.DiffRecipes(ro, rn, a.cs)
}

// recipeFor returns the cached recipe of data, ingesting it on a miss.
func (a *RecipeAlgo) recipeFor(data []byte) chunk.Recipe {
	key := sha256.Sum256(data)
	a.mu.Lock()
	if r, ok := a.recipes[key]; ok {
		a.mu.Unlock()
		return r
	}
	a.mu.Unlock()

	r := a.cs.IngestAll(a.ck, data) // concurrent-safe; may race a twin
	a.mu.Lock()
	if prev, ok := a.recipes[key]; ok {
		a.mu.Unlock()
		a.cs.ReleaseRecipe(r) // a twin won the install; drop our references
		return prev
	}
	a.recipes[key] = r
	a.order = append(a.order, key)
	var evicted []chunk.Recipe
	for len(a.order) > a.maxKeep {
		old := a.order[0]
		a.order = a.order[1:]
		evicted = append(evicted, a.recipes[old])
		delete(a.recipes, old)
	}
	a.mu.Unlock()
	for _, e := range evicted {
		a.cs.ReleaseRecipe(e)
	}
	return r
}
