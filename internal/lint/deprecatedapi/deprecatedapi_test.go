package deprecatedapi_test

import (
	"testing"

	"ipdelta/internal/lint/analysistest"
	"ipdelta/internal/lint/deprecatedapi"
)

func TestDeprecatedAPI(t *testing.T) {
	analysistest.Run(t, deprecatedapi.Analyzer, "ipdelta")
}
