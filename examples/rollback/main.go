// Rollback: a release turns out to be bad, and the fleet must return to
// the previous version — in place, without the server having stored any
// backward deltas. The store inverts its forward chain (delta inversion),
// converts the result for in-place reconstruction, and the device applies
// it in the space the bad version occupies.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/device"
	"ipdelta/internal/graph"
	"ipdelta/internal/stats"
	"ipdelta/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Release history: v0, v1 (good), v2 (the bad release).
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: 96 << 10, ChangeRate: 0, Seed: 13})
	s := store.New(base.Ref)
	cur := base.Ref
	for k := 1; k <= 2; k++ {
		gen := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: len(cur), ChangeRate: 0.06, Seed: 13 + int64(k)})
		v := append([]byte(nil), cur...)
		splice := len(v) / 8
		copy(v[k*2*splice:k*2*splice+splice], gen.Version[:splice])
		if _, err := s.AppendVersion(v); err != nil {
			return err
		}
		cur = v
	}
	v1, err := s.Version(1)
	if err != nil {
		return err
	}
	v2, err := s.Version(2)
	if err != nil {
		return err
	}
	fmt.Printf("fleet is on v2 (%s); v2 is bad — rolling back to v1\n", stats.Bytes(int64(len(v2))))

	// The server computes one in-place rollback delta v2 → v1.
	rb, st, err := s.RollbackDelta(1, graph.LocallyMinimum{})
	if err != nil {
		return err
	}
	var wire bytes.Buffer
	if _, err := codec.Encode(&wire, rb, codec.FormatCompact); err != nil {
		return err
	}
	wireBytes := int64(wire.Len()) // Apply drains the buffer below
	fmt.Printf("rollback delta: %s (%d copies, %d conversions for in-place safety)\n",
		stats.Bytes(wireBytes), rb.NumCopies(), st.ConvertedCopies)

	// A device running the bad v2 applies it in place.
	capacity := int64(len(v2))
	if int64(len(v1)) > capacity {
		capacity = int64(len(v1))
	}
	flash, err := device.NewFlash(v2, capacity)
	if err != nil {
		return err
	}
	dev := device.New(flash, int64(len(v2)), 2048)
	if err := dev.Apply(&wire); err != nil {
		return err
	}
	if !bytes.Equal(dev.Image(), v1) {
		return fmt.Errorf("device did not return to v1")
	}
	fmt.Printf("device back on v1 (%s) — delta was %.1f%% of a full downgrade image\n",
		stats.Bytes(dev.ImageLen()), 100*float64(wireBytes)/float64(len(v1)))
	return nil
}
