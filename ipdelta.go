// Package ipdelta is a library for delta compression with in-place
// reconstruction, implementing Burns & Long, "In-Place Reconstruction of
// Delta Compressed Files" (PODC 1998).
//
// A delta file encodes a new version of a file as copy commands (reuse
// bytes of the old version) and add commands (literal new bytes).
// Traditional reconstruction needs both versions resident; this library
// post-processes a delta so it can be applied *in the storage the old
// version occupies* — the right shape for firmware/OTA updates to devices
// without scratch space.
//
// Quick start:
//
//	d, _ := ipdelta.Diff(oldBytes, newBytes)             // compute a delta
//	ip, st, _ := ipdelta.ConvertInPlace(d, oldBytes)     // make it in-place safe
//	buf := make([]byte, ip.InPlaceBufLen())
//	copy(buf, oldBytes)
//	_ = ip.ApplyInPlace(buf)                             // buf now holds newBytes
//
// Wire formats, streaming application, a simulated flash device and a TCP
// software-update protocol are re-exported from the sub-packages below.
package ipdelta

import (
	"io"

	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
	"ipdelta/internal/diff"
	"ipdelta/internal/graph"
	"ipdelta/internal/inplace"
	"ipdelta/internal/obs"
)

// Core model types.
type (
	// Delta is a parsed delta file: ordered commands plus file sizes.
	Delta = delta.Delta
	// Command is one copy or add directive.
	Command = delta.Command
	// Op identifies a command kind.
	Op = delta.Op
	// ConvertStats reports what in-place conversion did (digraph size,
	// cycles broken, copies converted).
	ConvertStats = inplace.Stats
	// Analysis describes a delta's in-place structure without converting
	// it; see Analyze.
	Analysis = inplace.Analysis
	// Format identifies a wire format.
	Format = codec.Format
	// Policy selects which vertex of a cycle to sacrifice.
	Policy = graph.Policy
	// ConvertOption customizes ConvertInPlace and DiffInPlace; see
	// WithPolicy, WithScratchBudget, and WithObserver.
	ConvertOption = inplace.Option
	// Registry collects metrics (counters, gauges, latency histograms)
	// from observed components. It serves Prometheus-style text or JSON
	// over HTTP (it implements http.Handler) and snapshots for tests; see
	// NewRegistry.
	Registry = obs.Registry
	// MetricsSnapshot is a point-in-time view of a Registry.
	MetricsSnapshot = obs.Snapshot
)

// Command kinds.
const (
	OpCopy = delta.OpCopy
	OpAdd  = delta.OpAdd
	// OpStash and OpUnstash are the bounded-scratch extension commands:
	// stash saves buffer bytes to device scratch before they are
	// overwritten; unstash writes them to their final location.
	OpStash   = delta.OpStash
	OpUnstash = delta.OpUnstash
)

// Wire formats.
const (
	// FormatOrdered is the most compact format; write offsets are implicit
	// so it cannot carry in-place deltas.
	FormatOrdered = codec.FormatOrdered
	// FormatOffsets carries explicit write offsets (in-place capable).
	FormatOffsets = codec.FormatOffsets
	// FormatCompact is the redesigned in-place capable format (the paper's
	// suggested future work); the default for in-place deltas.
	FormatCompact = codec.FormatCompact
	// FormatLegacyOrdered and FormatLegacyOffsets are the classic
	// byte-granular codewords, kept for the paper's encoding comparison.
	FormatLegacyOrdered = codec.FormatLegacyOrdered
	FormatLegacyOffsets = codec.FormatLegacyOffsets
	// FormatScratch carries deltas using the bounded-scratch extension
	// (stash/unstash commands plus a declared scratch requirement).
	FormatScratch = codec.FormatScratch
)

// Cycle-breaking policies (§5 of the paper).
var (
	// ConstantTime deletes the vertex at which each cycle was detected.
	ConstantTime Policy = graph.ConstantTime{}
	// LocallyMinimum deletes the cheapest vertex of each cycle; superior
	// on every metric in the paper's evaluation and the default here.
	LocallyMinimum Policy = graph.LocallyMinimum{}
)

// NewCopy returns a copy command ⟨from, to, length⟩.
func NewCopy(from, to, length int64) Command { return delta.NewCopy(from, to, length) }

// NewAdd returns an add command writing data at offset to.
func NewAdd(to int64, data []byte) Command { return delta.NewAdd(to, data) }

// Diff computes a delta materializing version from ref using the
// linear-time, constant-space differencing algorithm. The returned delta is
// in write order; it is correct for scratch-space application but not, in
// general, safe to apply in place — use ConvertInPlace for that.
func Diff(ref, version []byte) (*Delta, error) {
	return diff.NewLinear().Diff(ref, version)
}

// DiffGreedy computes a delta with the classical greedy matcher: usually a
// slightly smaller delta at a substantially higher cost.
func DiffGreedy(ref, version []byte) (*Delta, error) {
	return diff.NewGreedy().Diff(ref, version)
}

// DiffParallel computes the same delta family as Diff with the reference
// index built and the version scanned across workers goroutines (<= 0 means
// GOMAXPROCS). On multi-core hosts it trades a few percent of compression —
// matches are stitched across segment seams, so the loss is bounded — for
// near-linear diff throughput.
func DiffParallel(ref, version []byte, workers int) (*Delta, error) {
	return diff.NewParallel(workers).Diff(ref, version)
}

// NewRegistry creates an empty metrics registry. Pass it to components
// via WithObserver (and the sub-packages' observer options) and mount it
// on an HTTP mux to expose a /metrics endpoint:
//
//	reg := ipdelta.NewRegistry()
//	ip, st, _ := ipdelta.ConvertInPlace(d, ref, ipdelta.WithObserver(reg))
//	http.Handle("/metrics", reg)
func NewRegistry() *Registry { return obs.NewRegistry() }

// WithPolicy selects the cycle-breaking policy (default LocallyMinimum).
func WithPolicy(p Policy) ConvertOption { return inplace.WithPolicy(p) }

// WithScratchBudget lets the conversion spend up to n bytes of device
// scratch memory to preserve copies that pure in-place conversion would
// turn into adds (the bounded-scratch extension). A result that uses any
// scratch must be encoded in FormatScratch; d.ScratchRequired() reports
// how much it needs.
func WithScratchBudget(n int64) ConvertOption { return inplace.WithScratchBudget(n) }

// WithObserver attaches a metrics registry to the conversion: per-stage
// timings and structural counters (edges, cycles broken per policy,
// converted copies and bytes) are recorded into it. Observation adds no
// allocations to the convert path.
func WithObserver(r *Registry) ConvertOption { return inplace.WithObserver(r) }

// ConvertInPlace rewrites d so a serial application in the space of ref is
// correct (Equation 2 of the paper): copies are permuted by topologically
// sorting the write-before-read conflict digraph, cycles are broken by
// converting copies to adds under the configured policy (default
// locally-minimum), and all adds move to the end. Behavior is customized
// with ConvertOption values: WithPolicy, WithScratchBudget, WithObserver.
func ConvertInPlace(d *Delta, ref []byte, opts ...ConvertOption) (*Delta, *ConvertStats, error) {
	return inplace.Convert(d, ref, opts...)
}

// ConvertInPlaceWithPolicy is ConvertInPlace under an explicit
// cycle-breaking policy.
//
// Deprecated: use ConvertInPlace(d, ref, WithPolicy(p)).
func ConvertInPlaceWithPolicy(d *Delta, ref []byte, p Policy) (*Delta, *ConvertStats, error) {
	return ConvertInPlace(d, ref, WithPolicy(p))
}

// ConvertInPlaceScratch is ConvertInPlace with a scratch budget.
//
// Deprecated: use ConvertInPlace(d, ref, WithScratchBudget(budget)).
func ConvertInPlaceScratch(d *Delta, ref []byte, budget int64) (*Delta, *ConvertStats, error) {
	return ConvertInPlace(d, ref, WithScratchBudget(budget))
}

// DiffInPlace is Diff followed by ConvertInPlace; opts apply to the
// conversion.
func DiffInPlace(ref, version []byte, opts ...ConvertOption) (*Delta, *ConvertStats, error) {
	d, err := Diff(ref, version)
	if err != nil {
		return nil, nil, err
	}
	return ConvertInPlace(d, ref, opts...)
}

// Patch materializes the version in fresh memory (requires both copies
// resident, like classic delta tools).
func Patch(ref []byte, d *Delta) ([]byte, error) { return d.Apply(ref) }

// PatchInPlace materializes the version inside buf, which must hold ref in
// its first d.RefLen bytes and be at least d.InPlaceBufLen() long. The
// delta must be in-place safe (d.CheckInPlace() == nil), as produced by
// ConvertInPlace.
func PatchInPlace(buf []byte, d *Delta) error {
	if err := d.CheckInPlace(); err != nil {
		return err
	}
	return d.ApplyInPlace(buf)
}

// Analyze inspects a delta's CRWI structure — conflict edges, cyclic
// components, and conversion bounds — without needing the reference file.
func Analyze(d *Delta) (*Analysis, error) { return inplace.Analyze(d) }

// Compose combines two deltas A→B and B→C into a single delta A→C without
// materializing B. Update servers use this to serve one direct delta
// composed from a chain of per-release deltas; run ConvertInPlace on the
// result before sending it to a device.
func Compose(first, second *Delta) (*Delta, error) { return delta.Compose(first, second) }

// ComposeChain folds Compose over a sequence of deltas.
func ComposeChain(deltas ...*Delta) (*Delta, error) { return delta.ComposeChain(deltas...) }

// Invert computes the reverse delta: given d encoding new from old, and
// old itself, it returns a delta encoding old from new — RCS-style
// backward deltas and device rollbacks.
func Invert(d *Delta, ref []byte) (*Delta, error) { return delta.Invert(d, ref) }

// Encode writes d to w in the given wire format, returning the bytes
// written.
func Encode(w io.Writer, d *Delta, f Format) (int64, error) { return codec.Encode(w, d, f) }

// Decode reads a delta file in any supported format.
func Decode(r io.Reader) (*Delta, Format, error) { return codec.Decode(r) }

// EncodedSize returns the exact encoded size of d in format f.
func EncodedSize(d *Delta, f Format) (int64, error) { return codec.EncodedSize(d, f) }
