package netupdate

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"ipdelta/internal/device"
)

// Result summarizes one update session from the device's perspective.
type Result struct {
	// UpToDate is true when the server had nothing newer.
	UpToDate bool
	// DeltaBytes is the size of the received payload (a delta, or the
	// whole image when FullImage is set).
	DeltaBytes int64
	// Resumed is true when the session continued an interrupted update.
	Resumed bool
	// FullImage is true when the session transferred the complete current
	// image instead of a delta — the degradation path.
	FullImage bool
}

// SessionOptions tunes one update session.
//
// Deprecated: pass the shared Config options (WithMessageTimeout,
// WithRequestFull) to Run instead.
type SessionOptions struct {
	// MessageTimeout arms a fresh read/write deadline before every I/O
	// operation on the connection, so a stalled peer fails the session
	// quickly while slow-but-flowing transfers proceed. Zero disables
	// deadlines.
	MessageTimeout time.Duration
	// RequestFull asks the server for the complete current image instead
	// of a delta. Any pending delta update is abandoned.
	RequestFull bool
}

// UpdateDevice runs one update session for dev over conn.
//
// Deprecated: use Run, which takes a context and the shared Config
// options.
func UpdateDevice(conn net.Conn, dev *device.Device) (Result, error) {
	return Run(context.Background(), conn, dev)
}

// RunSession is one update session with a context and the retired
// SessionOptions struct.
//
// Deprecated: use Run with WithMessageTimeout / WithRequestFull.
func RunSession(ctx context.Context, conn net.Conn, dev *device.Device, opts SessionOptions) (Result, error) {
	return Run(ctx, conn, dev,
		WithMessageTimeout(opts.MessageTimeout), WithRequestFull(opts.RequestFull))
}

// Run executes one update session for dev over conn — a raw v1
// connection or one v2 Stream; the wire conversation is identical. On
// success the device's flash holds the server's current version. If the
// device had an interrupted update pending, the session asks for the
// same delta again and resumes it; if the connection or power fails
// mid-update, the device keeps its progress and a later Run completes
// it. Cancelling the context aborts in-flight I/O on the connection.
func Run(ctx context.Context, conn net.Conn, dev *device.Device, opts ...Option) (Result, error) {
	var cfg Config
	cfg.apply(opts)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	stop := cancelOnCtx(ctx, conn)
	defer stop()
	c := withDeadlines(conn, cfg.MessageTimeout)
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)

	var h hello
	p, pending := dev.PendingUpdate()
	switch {
	case pending && (p.Full || cfg.RequestFull):
		// Resuming (or forcing) a full install: the flash is partially
		// overwritten, so there is no meaningful source CRC to report.
		h = hello{Updating: p.Full, WantFull: true, Capacity: dev.FlashCapacity()}
	case pending:
		h = hello{
			Updating: true,
			ImageCRC: p.RefCRC,
			ImageLen: p.RefLen,
			Capacity: dev.FlashCapacity(),
		}
	default:
		crc, err := dev.ImageCRC()
		if err != nil {
			return Result{}, err
		}
		h = hello{
			WantFull: cfg.RequestFull,
			ImageCRC: crc,
			ImageLen: dev.ImageLen(),
			Capacity: dev.FlashCapacity(),
		}
	}
	if err := writeMsg(w, msgHello, encodeHello(h)); err != nil {
		return Result{}, err
	}
	if err := w.Flush(); err != nil {
		return Result{}, err
	}

	typ, n, err := readMsgHeader(r)
	if err != nil {
		return Result{}, err
	}
	switch typ {
	case msgUpToDate:
		return Result{UpToDate: true}, nil
	case msgError:
		payload, err := readPayload(r, n)
		if err != nil {
			return Result{}, err
		}
		return Result{}, &ServerError{Msg: string(payload)}
	case msgDelta:
		// Stream the delta payload straight into the device.
		res := Result{DeltaBytes: n, Resumed: h.Updating}
		if err := dev.Apply(io.LimitReader(r, n)); err != nil {
			return res, err
		}
		return res, confirm(r, w, dev)
	case msgFull:
		res := Result{DeltaBytes: n, Resumed: h.Updating, FullImage: true}
		if err := dev.InstallFull(io.LimitReader(r, n), n); err != nil {
			return res, err
		}
		return res, confirm(r, w, dev)
	default:
		return Result{}, fmt.Errorf("%w: unexpected message %#x", ErrProtocol, typ)
	}
}

// confirm reports the reconstructed image's CRC and waits for the server's
// verdict, so a transfer corrupted in flight is detected here rather than
// on the next boot.
func confirm(r *bufio.Reader, w *bufio.Writer, dev *device.Device) error {
	crc, err := dev.ImageCRC()
	if err != nil {
		return err
	}
	if err := writeMsg(w, msgStatus, encodeStatus(status{OK: true, ImageCRC: crc})); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	payload, err := readMsg(r, msgAck)
	if err != nil {
		return err
	}
	ok, err := decodeAck(payload)
	if err != nil {
		return err
	}
	if !ok {
		return ErrImageRejected
	}
	return nil
}
