// Package archive implements the store's durable archival tier: cold
// delta-chain segments are striped as systematic Reed–Solomon code words
// over GF(2^8) across simulated storage nodes, so every archived version
// survives up to m node losses and silent shard corruption. The package
// follows Harshan/Datta/Oggier's compressed differential erasure coding
// of versioned data (arXiv:1503.05434): the units being erasure-coded are
// *delta-compressed* segment blobs, not full images, so the redundancy
// overhead is paid on the compressed representation.
//
// The pieces:
//
//   - a Coder encodes k data shards into k+m total shards and rebuilds the
//     originals from any k survivors (rs.go);
//   - a Node is one simulated storage target with seeded fault injection —
//     crash, wipe, bit-rot, truncation, transient I/O — in the
//     FaultyStore/FlakyConn tradition (node.go);
//   - an Archive stripes blobs across nodes with per-shard CRCs, serves
//     degraded reads from any k of n shards, and provides scrub (verify
//     every shard) and repair (re-encode missing or corrupt shards from
//     surviving peers) passes (archive.go).
package archive

// GF(2^8) arithmetic over the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the field used by virtually every byte-oriented Reed–Solomon
// deployment. gfExp is doubled so gfMul can index log(a)+log(b) without a
// modular reduction.
var (
	gfExp [510]byte
	gfLog [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfExp[i+255] = x
		gfLog[x] = byte(i)
		// Multiply x by the generator 2 in GF(2^8).
		high := x&0x80 != 0
		x <<= 1
		if high {
			x ^= 0x1d
		}
	}
}

// gfMul returns a·b in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a. a must be non-zero.
func gfInv(a byte) byte {
	return gfExp[255-int(gfLog[a])]
}

// gfDiv returns a/b in GF(2^8). b must be non-zero.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// mulAddRow accumulates c·src into dst (dst[i] ^= c·src[i]), the inner
// loop of both encoding and reconstruction.
func mulAddRow(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}
