package netupdate

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// ErrInjectedFault is returned by FlakyConn once its fault trigger fires;
// the connection is dead from then on, like a dropped link.
var ErrInjectedFault = errors.New("netupdate: injected connection fault")

// FaultProfile configures FlakyConn's deterministic fault injection. All
// randomness derives from Seed, so any failing chaos run replays exactly.
type FaultProfile struct {
	// Seed feeds the fault RNG.
	Seed uint64
	// DropAfterBytes kills the connection after exactly this many payload
	// bytes have crossed it (reads and writes combined). Zero disables.
	DropAfterBytes int64
	// OpFaultRate is the per-operation probability that the connection
	// dies before the read or write happens.
	OpFaultRate float64
	// CorruptRate is the per-read probability that one byte of the data
	// just received is flipped — an undetected transport error.
	CorruptRate float64
	// SpikeRate is the per-operation probability of a latency spike of
	// Spike before the operation proceeds.
	SpikeRate float64
	// Spike is the injected latency spike duration.
	Spike time.Duration
}

// FlakyConn wraps a net.Conn with deterministic, seeded network-fault
// injection: connection drops (after N bytes, or randomly per operation),
// latency spikes, and byte corruption. It is the network twin of
// device.FaultyStore, and goroutine-safe so a chaos run can share one
// profile across concurrent sessions.
type FlakyConn struct {
	net.Conn

	mu          sync.Mutex
	profile     FaultProfile
	rng         *rand.Rand
	transferred int64
	dead        bool
}

// NewFlakyConn wraps conn with the given fault profile.
func NewFlakyConn(conn net.Conn, p FaultProfile) *FlakyConn {
	return &FlakyConn{
		Conn:    conn,
		profile: p,
		rng:     rand.New(rand.NewPCG(p.Seed, 0)),
	}
}

// Transferred returns how many bytes crossed the connection so far.
func (f *FlakyConn) Transferred() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transferred
}

// plan draws this operation's fate: an injected drop, a latency spike, a
// byte-limit for the transfer, and (for reads) a corruption draw. The RNG
// is consulted in a fixed order so runs replay deterministically. The
// blocking I/O itself happens outside the lock.
func (f *FlakyConn) plan(read bool) (allow int64, spike time.Duration, corrupt float64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return 0, 0, -1, ErrInjectedFault
	}
	if f.profile.OpFaultRate > 0 && f.rng.Float64() < f.profile.OpFaultRate {
		f.dead = true
		return 0, 0, -1, ErrInjectedFault
	}
	if f.profile.SpikeRate > 0 && f.rng.Float64() < f.profile.SpikeRate {
		spike = f.profile.Spike
	}
	corrupt = -1
	if read && f.profile.CorruptRate > 0 && f.rng.Float64() < f.profile.CorruptRate {
		corrupt = f.rng.Float64() // position fraction of the flipped byte
	}
	allow = int64(1) << 62
	if f.profile.DropAfterBytes > 0 {
		allow = f.profile.DropAfterBytes - f.transferred
		if allow <= 0 {
			f.dead = true
			return 0, 0, -1, ErrInjectedFault
		}
	}
	return allow, spike, corrupt, nil
}

// account adds n transferred bytes and kills the connection once the byte
// budget is exactly spent.
func (f *FlakyConn) account(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.transferred += int64(n)
	if f.profile.DropAfterBytes > 0 && f.transferred >= f.profile.DropAfterBytes {
		f.dead = true
	}
}

// Read implements net.Conn.
func (f *FlakyConn) Read(p []byte) (int, error) {
	allow, spike, corrupt, err := f.plan(true)
	if err != nil {
		return 0, err
	}
	if spike > 0 {
		time.Sleep(spike)
	}
	if int64(len(p)) > allow {
		// Truncate the request so the drop lands on an exact byte
		// boundary — table-driven cut-point tests depend on it.
		p = p[:allow]
	}
	n, err := f.Conn.Read(p)
	if n > 0 && corrupt >= 0 {
		p[int(corrupt*float64(n))] ^= 0x20
	}
	f.account(n)
	return n, err
}

// Write implements net.Conn.
func (f *FlakyConn) Write(p []byte) (int, error) {
	allow, spike, _, err := f.plan(false)
	if err != nil {
		return 0, err
	}
	if spike > 0 {
		time.Sleep(spike)
	}
	if int64(len(p)) > allow {
		n, err := f.Conn.Write(p[:allow])
		f.account(n)
		if err != nil {
			return n, err
		}
		return n, ErrInjectedFault
	}
	n, err := f.Conn.Write(p)
	f.account(n)
	return n, err
}
