package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ipdelta/internal/corpus"
	"ipdelta/internal/fleet"
	"ipdelta/internal/stats"
)

// FleetRow is one distribution mode in the fleet rollout experiment.
type FleetRow struct {
	Mode        fleet.Mode
	BytesOnWire int64
	Makespan    time.Duration
	Fallbacks   int
}

// FleetResult is the E11 experiment: rolling one release out to a mixed
// fleet of limited-storage devices over a shared low-bandwidth channel,
// under each distribution mode. It quantifies the paper's deployment
// argument end to end: in-place deltas get delta-sized traffic without the
// two-copy storage requirement that forces fallbacks.
type FleetResult struct {
	Devices int
	Link    int64
	Rows    []FleetRow
}

// RunFleet builds a release history and a mixed fleet, then simulates all
// three modes.
func RunFleet(imageSize, releases, devices int, linkBPS int64, seed int64) (*FleetResult, error) {
	rng := rand.New(rand.NewSource(seed))
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: imageSize, ChangeRate: 0, Seed: seed})
	history := [][]byte{base.Ref}
	cur := base.Ref
	for k := 1; k < releases; k++ {
		gen := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: len(cur), ChangeRate: 0.05, Seed: seed + int64(k)})
		v := append([]byte(nil), cur...)
		splice := len(v) / 8
		at := (k * 2 * splice) % (len(v) - splice)
		copy(v[at:at+splice], gen.Version[:splice])
		history = append(history, v)
		cur = v
	}
	specs := make([]fleet.DeviceSpec, devices)
	for k := range specs {
		specs[k] = fleet.DeviceSpec{
			Release: rng.Intn(releases),
			// Most devices are storage-tight; a minority has 2x flash.
			CapacitySlack: 0.05,
		}
		if rng.Intn(5) == 0 {
			specs[k].CapacitySlack = 1.2
		}
	}
	cfg := fleet.Config{Releases: history, Devices: specs, LinkBitsPerSecond: linkBPS}
	res := &FleetResult{Devices: devices, Link: linkBPS}
	for _, mode := range []fleet.Mode{fleet.ModeFull, fleet.ModeDeltaScratch, fleet.ModeDeltaInPlace} {
		o, err := fleet.Simulate(cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("fleet %v: %w", mode, err)
		}
		res.Rows = append(res.Rows, FleetRow{
			Mode:        mode,
			BytesOnWire: o.BytesOnWire,
			Makespan:    o.Makespan,
			Fallbacks:   o.Fallbacks,
		})
	}
	return res, nil
}

// Render prints the rollout comparison.
func (r *FleetResult) Render(w io.Writer) error {
	t := stats.Table{
		Title: fmt.Sprintf("E11 — fleet rollout: %d devices over a shared %s link",
			r.Devices, rateName(r.Link)),
		Headers: []string{"mode", "bytes on wire", "makespan", "full-image fallbacks"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Mode.String(),
			stats.Bytes(row.BytesOnWire),
			roundDur(row.Makespan),
			fmt.Sprintf("%d", row.Fallbacks),
		)
	}
	return t.Render(w)
}
