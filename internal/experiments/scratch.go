package experiments

import (
	"fmt"
	"io"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/inplace"
	"ipdelta/internal/stats"
)

// ScratchRow is one budget point on the scratch/compression trade-off
// curve.
type ScratchRow struct {
	// Budget is the scratch allowance as a fraction of the version size.
	Budget float64
	// DeltaBytes is the total encoded size at this budget.
	DeltaBytes int64
	// Compression is delta bytes / version bytes.
	Compression float64
	// Stashed and Converted count what happened to cycle victims.
	Stashed   int
	Converted int
	// ScratchUsed is the actual scratch consumed.
	ScratchUsed int64
}

// ScratchResult is the E12 experiment (extension): the trade-off between
// device scratch memory and compression lost to cycle breaking. Budget 0
// is the paper's pure in-place algorithm; as the budget grows, converted
// adds turn into stashes until the cycle loss vanishes — quantifying what
// a few kilobytes of RAM buy.
type ScratchResult struct {
	Rows         []ScratchRow
	VersionBytes int64
}

// RunScratch sweeps scratch budgets over the corpus.
func RunScratch(pairs []corpus.Pair, algo diff.Algorithm, budgets []float64) (*ScratchResult, error) {
	res := &ScratchResult{}
	for _, p := range pairs {
		res.VersionBytes += int64(len(p.Version))
	}
	for _, b := range budgets {
		row := ScratchRow{Budget: b}
		for _, p := range pairs {
			d, err := algo.Diff(p.Ref, p.Version)
			if err != nil {
				return nil, err
			}
			budget := int64(float64(len(p.Version)) * b)
			ip, st, err := inplace.Convert(d, p.Ref, inplace.WithScratchBudget(budget))
			if err != nil {
				return nil, fmt.Errorf("scratch %s @%.3f: %w", p.Name, b, err)
			}
			n, err := codec.EncodedSize(ip, codec.FormatScratch)
			if err != nil {
				return nil, err
			}
			row.DeltaBytes += n
			row.Stashed += st.StashedCopies
			row.Converted += st.ConvertedCopies
			row.ScratchUsed += st.ScratchUsed
		}
		row.Compression = float64(row.DeltaBytes) / float64(res.VersionBytes)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the trade-off curve.
func (r *ScratchResult) Render(w io.Writer) error {
	t := stats.Table{
		Title:   "E12 — bounded-scratch trade-off: device memory vs compression loss",
		Headers: []string{"scratch budget", "delta bytes", "compression", "stashed", "converted to adds", "scratch used"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			stats.Pct(row.Budget)+" of version",
			stats.Bytes(row.DeltaBytes),
			stats.Pct(row.Compression),
			fmt.Sprintf("%d", row.Stashed),
			fmt.Sprintf("%d", row.Converted),
			stats.Bytes(row.ScratchUsed),
		)
	}
	return t.Render(w)
}
