// Package checker is the ipvet analysis driver: it schedules analyzers
// over typechecked packages the way x/tools' separate-compilation drivers
// do, in miniature.
//
// Two orders matter. Within one package, analyzers run in a topological
// order of their Requires graphs, so a pass like callgraph runs before the
// analyzers that consume its result through Pass.ResultOf. Across
// packages, the checker computes the dependency order of the loaded
// packages — dogfooding the repository's own internal/graph CSR builder
// and enhanced topological sort, the same machinery the converter runs
// over CRWI digraphs — and processes dependencies first, carrying each
// analyzer's exported Facts forward. A fact crosses the package boundary
// only through a gob round-trip, which both enforces that fact types stay
// serializable (the x/tools contract) and hands every importer its own
// decoded copy instead of shared mutable state.
package checker

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"

	"ipdelta/internal/graph"
	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/loader"
)

// Diagnostic is one non-suppressed finding with its source positions
// resolved and any suggested fixes flattened to file-offset edits.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	End      token.Position // zero when the analyzer reported no range
	Message  string
	Fixes    []Fix
}

// Fix is one applicable repair: non-overlapping byte-offset edits within
// single files.
type Fix struct {
	Message string
	Edits   []Edit
}

// Edit replaces file bytes [Start, End) with NewText.
type Edit struct {
	File       string
	Start, End int
	NewText    []byte
}

// Run applies the analyzers to the packages and returns the findings in
// source order, //ipvet:ignore suppressions already applied. Facts flow
// between packages in dependency order; results flow between analyzers in
// Requires order.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	order, err := analyzerOrder(analyzers)
	if err != nil {
		return nil, err
	}
	pkgOrder, err := dependencyOrder(pkgs)
	if err != nil {
		return nil, err
	}

	facts := newFactStore()
	// results[pkg][analyzer] — retained only for the package in flight.
	var diags []Diagnostic
	for _, pkg := range pkgOrder {
		results := map[*analysis.Analyzer]any{}
		for _, a := range order {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				ResultOf:  map[*analysis.Analyzer]any{},
			}
			for _, req := range a.Requires {
				pass.ResultOf[req] = results[req]
			}
			installFactAPI(pass, facts, a, pkg.Types)
			a := a // capture for the closure below
			pass.Report = func(d analysis.Diagnostic) {
				if pkg.Ignored(a.Name, d.Pos) {
					return
				}
				diags = append(diags, resolve(pkg.Fset, a.Name, d))
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			results[a] = res
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// resolve flattens an analyzer diagnostic to positions and offset edits.
func resolve(fset *token.FileSet, name string, d analysis.Diagnostic) Diagnostic {
	out := Diagnostic{Analyzer: name, Pos: fset.Position(d.Pos), Message: d.Message}
	if d.End.IsValid() {
		out.End = fset.Position(d.End)
	}
	for _, f := range d.SuggestedFixes {
		fix := Fix{Message: f.Message}
		for _, e := range f.TextEdits {
			p, q := fset.Position(e.Pos), fset.Position(e.End)
			if !e.End.IsValid() {
				q = p
			}
			fix.Edits = append(fix.Edits, Edit{
				File:    p.Filename,
				Start:   p.Offset,
				End:     q.Offset,
				NewText: append([]byte(nil), e.NewText...),
			})
		}
		out.Fixes = append(out.Fixes, fix)
	}
	return out
}

// analyzerOrder returns the Requires-closure of the given analyzers in a
// topological order (dependencies first), rejecting cycles and duplicate
// names.
func analyzerOrder(analyzers []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	var order []*analysis.Analyzer
	state := map[*analysis.Analyzer]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(a *analysis.Analyzer) error
	visit = func(a *analysis.Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("checker: Requires cycle through %q", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	seen := map[string]bool{}
	for _, a := range order {
		if seen[a.Name] {
			return nil, fmt.Errorf("checker: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return order, nil
}

// dependencyOrder sorts the loaded packages so that every package follows
// all loaded packages it (transitively) imports. The import graph is built
// in CSR form and ordered with the enhanced topological sort — the same
// code path the converter uses on CRWI digraphs; Go's import rules make
// the graph acyclic, so a broken cycle here is an internal error.
func dependencyOrder(pkgs []*loader.Package) ([]*loader.Package, error) {
	index := map[*types.Package]int{}
	for i, p := range pkgs {
		index[p.Types] = i
	}
	// deps[i] lists the loaded packages reachable from pkgs[i] through the
	// full (transitive) import graph; go/types only records direct imports
	// per package, so reachability is a DFS over types.Package links.
	deps := make([][]int, len(pkgs))
	for i, p := range pkgs {
		seen := map[*types.Package]bool{}
		var walk func(t *types.Package)
		walk = func(t *types.Package) {
			for _, imp := range t.Imports() {
				if seen[imp] {
					continue
				}
				seen[imp] = true
				if j, ok := index[imp]; ok && j != i {
					deps[i] = append(deps[i], j)
				}
				walk(imp)
			}
		}
		walk(p.Types)
	}

	// Two-pass CSR build: an edge dep → importer for every dependency.
	var b graph.CSRBuilder
	b.Reset(len(pkgs))
	for _, ds := range deps {
		for _, d := range ds {
			b.CountEdge(d)
		}
	}
	b.StartFill()
	for i, ds := range deps {
		for _, d := range ds {
			b.FillEdge(d, i)
		}
	}
	g := b.Finish()

	res := graph.TopoSort(g, func(int) int64 { return 1 }, graph.LocallyMinimum{})
	if res.CyclesBroken > 0 || len(res.Order) != len(pkgs) {
		return nil, fmt.Errorf("checker: import graph is cyclic (%d cycles)", res.CyclesBroken)
	}
	out := make([]*loader.Package, len(pkgs))
	for k, v := range res.Order {
		out[k] = pkgs[v]
	}
	return out, nil
}

// factStore holds every exported fact, gob-encoded, keyed by fact type
// plus owner (object or package). One store spans the whole Run, which is
// what carries facts from dependency packages to their importers.
type factStore struct {
	objs map[objKey][]byte
	pkgs map[pkgKey][]byte
	// owners preserves export order per fact type for AllObjectFacts /
	// AllPackageFacts determinism.
	objOwners map[reflect.Type][]types.Object
	pkgOwners map[reflect.Type][]*types.Package
}

type objKey struct {
	t   reflect.Type
	obj types.Object
}

type pkgKey struct {
	t   reflect.Type
	pkg *types.Package
}

func newFactStore() *factStore {
	return &factStore{
		objs:      map[objKey][]byte{},
		pkgs:      map[pkgKey][]byte{},
		objOwners: map[reflect.Type][]types.Object{},
		pkgOwners: map[reflect.Type][]*types.Package{},
	}
}

// encodeFact round-trips fact through gob, enforcing serializability.
func encodeFact(fact analysis.Fact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return nil, fmt.Errorf("fact %T is not gob-serializable: %w", fact, err)
	}
	return buf.Bytes(), nil
}

func decodeFact(data []byte, into analysis.Fact) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(into)
}

// installFactAPI wires the pass's fact functions to the shared store,
// enforcing that the analyzer declared the fact's type in FactTypes.
func installFactAPI(pass *analysis.Pass, store *factStore, a *analysis.Analyzer, current *types.Package) {
	declared := map[reflect.Type]bool{}
	for _, ft := range a.FactTypes {
		declared[reflect.TypeOf(ft)] = true
	}
	check := func(fact analysis.Fact) reflect.Type {
		t := reflect.TypeOf(fact)
		if !declared[t] {
			panic(fmt.Sprintf("analyzer %q used fact type %v not declared in FactTypes", a.Name, t))
		}
		return t
	}

	pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
		t := check(fact)
		if obj == nil {
			panic(fmt.Sprintf("analyzer %q exported an object fact with nil object", a.Name))
		}
		data, err := encodeFact(fact)
		if err != nil {
			panic(err)
		}
		k := objKey{t: t, obj: obj}
		if _, exists := store.objs[k]; !exists {
			store.objOwners[t] = append(store.objOwners[t], obj)
		}
		store.objs[k] = data
	}
	pass.ImportObjectFact = func(obj types.Object, fact analysis.Fact) bool {
		t := check(fact)
		data, ok := store.objs[objKey{t: t, obj: obj}]
		if !ok {
			return false
		}
		if err := decodeFact(data, fact); err != nil {
			panic(err)
		}
		return true
	}
	pass.ExportPackageFact = func(fact analysis.Fact) {
		t := check(fact)
		data, err := encodeFact(fact)
		if err != nil {
			panic(err)
		}
		k := pkgKey{t: t, pkg: current}
		if _, exists := store.pkgs[k]; !exists {
			store.pkgOwners[t] = append(store.pkgOwners[t], current)
		}
		store.pkgs[k] = data
	}
	pass.ImportPackageFact = func(pkg *types.Package, fact analysis.Fact) bool {
		t := check(fact)
		data, ok := store.pkgs[pkgKey{t: t, pkg: pkg}]
		if !ok {
			return false
		}
		if err := decodeFact(data, fact); err != nil {
			panic(err)
		}
		return true
	}
	pass.AllObjectFacts = func() []analysis.ObjectFact {
		var out []analysis.ObjectFact
		for _, ft := range a.FactTypes {
			t := reflect.TypeOf(ft)
			for _, obj := range store.objOwners[t] {
				fresh := reflect.New(t.Elem()).Interface().(analysis.Fact)
				if err := decodeFact(store.objs[objKey{t: t, obj: obj}], fresh); err != nil {
					panic(err)
				}
				out = append(out, analysis.ObjectFact{Object: obj, Fact: fresh})
			}
		}
		return out
	}
	pass.AllPackageFacts = func() []analysis.PackageFact {
		var out []analysis.PackageFact
		for _, ft := range a.FactTypes {
			t := reflect.TypeOf(ft)
			for _, pkg := range store.pkgOwners[t] {
				fresh := reflect.New(t.Elem()).Interface().(analysis.Fact)
				if err := decodeFact(store.pkgs[pkgKey{t: t, pkg: pkg}], fresh); err != nil {
					panic(err)
				}
				out = append(out, analysis.PackageFact{Package: pkg, Fact: fresh})
			}
		}
		return out
	}
}
