// Fixture with an expectation no diagnostic satisfies: the analyzer only
// reports "boom" literals, so this want must go unmatched.
package missing

func f() int {
	n := 1
	return n // want `string literal`
}
