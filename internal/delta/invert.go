package delta

import (
	"cmp"
	"fmt"
	"slices"

	"ipdelta/internal/interval"
)

// Invert computes the reverse delta: given d encoding version V from
// reference R, and R itself, it returns a delta encoding R from V. Version
// stores use this for RCS-style backward chains (newest version stored
// whole, history as reverse deltas), and update servers for rollbacks.
//
// Construction: every copy ⟨f, t, l⟩ of d copies R[f, f+l) into V[t, t+l),
// so the inverse can copy V[t, t+l) back into R[f, f+l). Copy read
// intervals may overlap in R (several copies reading the same reference
// bytes), so overlapping regions are trimmed first-wins; whatever part of
// R no copy covers is carried as literal data from R.
func Invert(d *Delta, ref []byte) (*Delta, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("invert: %w", err)
	}
	if int64(len(ref)) != d.RefLen {
		return nil, fmt.Errorf("invert: reference length %d, delta expects %d", len(ref), d.RefLen)
	}
	inv := &Delta{RefLen: d.VersionLen, VersionLen: d.RefLen}

	// Collect inverse copies: writes into R-space, trimmed to disjointness.
	type span struct{ from, to, length int64 } // from in V-space, to in R-space
	var spans []span
	covered := interval.NewSet()
	// Deterministic processing order: by R offset, longest first, so the
	// largest copies win the overlap trims.
	copies := make([]Command, 0, len(d.Commands))
	for _, c := range d.Commands {
		if c.Op == OpCopy {
			copies = append(copies, c)
		}
	}
	slices.SortFunc(copies, func(a, b Command) int {
		if c := cmp.Compare(a.From, b.From); c != 0 {
			return c
		}
		return cmp.Compare(b.Length, a.Length)
	})
	for _, c := range copies {
		// Trim [c.From, c.From+c.Length) against what is already covered,
		// emitting the surviving sub-intervals.
		lo := c.From
		end := c.From + c.Length
		for lo < end {
			// Skip covered prefix.
			for lo < end && covered.Contains(lo) {
				lo++
			}
			if lo >= end {
				break
			}
			hi := lo
			for hi < end && !covered.Contains(hi) {
				hi++
			}
			spans = append(spans, span{
				from:   c.To + (lo - c.From),
				to:     lo,
				length: hi - lo,
			})
			covered.Add(interval.Interval{Lo: lo, Hi: hi - 1})
			lo = hi
		}
	}

	slices.SortFunc(spans, func(a, b span) int { return cmp.Compare(a.to, b.to) })
	// Emit in R write order, filling gaps with literals from R.
	var at int64
	for _, s := range spans {
		if s.to > at {
			data := make([]byte, s.to-at)
			copy(data, ref[at:s.to])
			inv.Commands = append(inv.Commands, NewAdd(at, data))
		}
		inv.Commands = append(inv.Commands, NewCopy(s.from, s.to, s.length))
		at = s.to + s.length
	}
	if at < d.RefLen {
		data := make([]byte, d.RefLen-at)
		copy(data, ref[at:])
		inv.Commands = append(inv.Commands, NewAdd(at, data))
	}
	return inv, nil
}
