package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeTemp writes content to a file under the test's temp dir.
func writeTemp(t *testing.T, dir, name string, content []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// versionPair builds related old/new contents.
func versionPair(t *testing.T) (old, new_ []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	old = make([]byte, 16<<10)
	rng.Read(old)
	new_ = append([]byte(nil), old...)
	copy(new_[2048:4096], old[8192:10240]) // block duplication
	for k := 0; k < 30; k++ {
		new_[rng.Intn(len(new_))] ^= 0xA5
	}
	return old, new_
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"diff"},
		{"convert"},
		{"patch"},
		{"info"},
		{"verify"},
		{"diff", "-ref", "nonexistent", "-version", "nope", "-out", "x"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestDiffPatchVerifyFlow(t *testing.T) {
	dir := t.TempDir()
	old, new_ := versionPair(t)
	refPath := writeTemp(t, dir, "old.bin", old)
	verPath := writeTemp(t, dir, "new.bin", new_)
	deltaPath := filepath.Join(dir, "delta.ipd")
	outPath := filepath.Join(dir, "out.bin")

	if err := run([]string{"diff", "-ref", refPath, "-version", verPath, "-out", deltaPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"info", "-delta", deltaPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-ref", refPath, "-delta", deltaPath, "-version", verPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"patch", "-ref", refPath, "-delta", deltaPath, "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new_) {
		t.Fatal("patched output differs from the version")
	}
}

func TestInPlaceFlow(t *testing.T) {
	dir := t.TempDir()
	old, new_ := versionPair(t)
	refPath := writeTemp(t, dir, "old.bin", old)
	verPath := writeTemp(t, dir, "new.bin", new_)
	rawPath := filepath.Join(dir, "raw.ipd")
	ipPath := filepath.Join(dir, "inplace.ipd")
	outPath := filepath.Join(dir, "out.bin")

	// diff -inplace in one step.
	if err := run([]string{"diff", "-ref", refPath, "-version", verPath, "-out", ipPath, "-inplace"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"patch", "-ref", refPath, "-delta", ipPath, "-out", outPath, "-inplace"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new_) {
		t.Fatal("in-place patched output differs")
	}

	// diff then convert as separate steps, constant-time policy.
	if err := run([]string{"diff", "-ref", refPath, "-version", verPath, "-out", rawPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"convert", "-ref", refPath, "-delta", rawPath, "-out", ipPath, "-policy", "constant-time"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-ref", refPath, "-delta", ipPath, "-version", verPath}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffGreedyAndFormats(t *testing.T) {
	dir := t.TempDir()
	old, new_ := versionPair(t)
	refPath := writeTemp(t, dir, "old.bin", old)
	verPath := writeTemp(t, dir, "new.bin", new_)
	for _, args := range [][]string{
		{"diff", "-ref", refPath, "-version", verPath, "-out", filepath.Join(dir, "g.ipd"), "-algo", "greedy"},
		{"diff", "-ref", refPath, "-version", verPath, "-out", filepath.Join(dir, "l.ipd"), "-format", "legacy-ordered"},
		{"diff", "-ref", refPath, "-version", verPath, "-out", filepath.Join(dir, "o.ipd"), "-inplace", "-format", "offsets"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	// Bad combinations must fail.
	for _, args := range [][]string{
		{"diff", "-ref", refPath, "-version", verPath, "-out", filepath.Join(dir, "x.ipd"), "-algo", "nope"},
		{"diff", "-ref", refPath, "-version", verPath, "-out", filepath.Join(dir, "x.ipd"), "-format", "nope"},
		{"diff", "-ref", refPath, "-version", verPath, "-out", filepath.Join(dir, "x.ipd"), "-inplace", "-format", "ordered"},
		{"convert", "-ref", refPath, "-delta", "missing.ipd", "-out", filepath.Join(dir, "x.ipd")},
		{"convert", "-ref", refPath, "-delta", refPath, "-out", filepath.Join(dir, "x.ipd")}, // not a delta file
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestVerifyDetectsMismatch(t *testing.T) {
	dir := t.TempDir()
	old, new_ := versionPair(t)
	refPath := writeTemp(t, dir, "old.bin", old)
	verPath := writeTemp(t, dir, "new.bin", new_)
	otherPath := writeTemp(t, dir, "other.bin", []byte("something else"))
	deltaPath := filepath.Join(dir, "delta.ipd")
	if err := run([]string{"diff", "-ref", refPath, "-version", verPath, "-out", deltaPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-ref", refPath, "-delta", deltaPath, "-version", otherPath}); err == nil {
		t.Fatal("verify accepted a wrong version file")
	}
}

func TestPatchInPlaceRefusesUnsafeDelta(t *testing.T) {
	dir := t.TempDir()
	// Build a delta with a WR conflict by hand: swap halves, write-order.
	old := []byte("AAAABBBB")
	new_ := []byte("BBBBAAAA")
	refPath := writeTemp(t, dir, "old.bin", old)
	verPath := writeTemp(t, dir, "new.bin", new_)
	deltaPath := filepath.Join(dir, "delta.ipd")
	if err := run([]string{"diff", "-ref", refPath, "-version", verPath, "-out", deltaPath, "-format", "offsets"}); err != nil {
		t.Fatal(err)
	}
	// The raw delta for a swap is conflicting; -inplace patch must refuse
	// (if the differencer happened to emit a safe delta, patch succeeds —
	// then this test is vacuous, so assert via info instead).
	err := run([]string{"patch", "-ref", refPath, "-delta", deltaPath, "-out", filepath.Join(dir, "o.bin"), "-inplace"})
	if err == nil {
		t.Skip("differencer emitted an already-safe delta for the swap")
	}
}

func TestComposeFlow(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := versionPair(t)
	v3 := append([]byte(nil), v2...)
	copy(v3[100:300], v2[5000:5200])
	v3 = append(v3, []byte("tail growth so lengths differ")...)

	p1 := writeTemp(t, dir, "v1", v1)
	p2 := writeTemp(t, dir, "v2", v2)
	p3 := writeTemp(t, dir, "v3", v3)
	d12 := filepath.Join(dir, "d12.ipd")
	d23 := filepath.Join(dir, "d23.ipd")
	d13 := filepath.Join(dir, "d13.ipd")

	if err := run([]string{"diff", "-ref", p1, "-version", p2, "-out", d12}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"diff", "-ref", p2, "-version", p3, "-out", d23}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compose", "-first", d12, "-second", d23, "-out", d13}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-ref", p1, "-delta", d13, "-version", p3}); err != nil {
		t.Fatal(err)
	}
	// Mismatched chains are rejected.
	if err := run([]string{"compose", "-first", d23, "-second", d12, "-out", d13}); err == nil {
		t.Fatal("mismatched composition accepted")
	}
	if err := run([]string{"compose"}); err == nil {
		t.Fatal("missing flags accepted")
	}
}

func TestDiffWithScratchBudget(t *testing.T) {
	dir := t.TempDir()
	// A half-swap guarantees a cycle that the budget can absorb.
	old := bytes.Repeat([]byte("A"), 4096)
	copy(old[2048:], bytes.Repeat([]byte("B"), 2048))
	new_ := append([]byte(nil), old[2048:]...)
	new_ = append(new_, old[:2048]...)
	refPath := writeTemp(t, dir, "old.bin", old)
	verPath := writeTemp(t, dir, "new.bin", new_)
	deltaPath := filepath.Join(dir, "d.ipd")
	if err := run([]string{"diff", "-ref", refPath, "-version", verPath, "-out", deltaPath, "-scratch", "4096"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"info", "-delta", deltaPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"verify", "-ref", refPath, "-delta", deltaPath, "-version", verPath}); err != nil {
		t.Fatal(err)
	}
}

func TestInvertFlow(t *testing.T) {
	dir := t.TempDir()
	old, new_ := versionPair(t)
	refPath := writeTemp(t, dir, "old.bin", old)
	verPath := writeTemp(t, dir, "new.bin", new_)
	fwdPath := filepath.Join(dir, "fwd.ipd")
	revPath := filepath.Join(dir, "rev.ipd")

	if err := run([]string{"diff", "-ref", refPath, "-version", verPath, "-out", fwdPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"invert", "-ref", refPath, "-delta", fwdPath, "-out", revPath}); err != nil {
		t.Fatal(err)
	}
	// The reverse delta maps new back to old.
	if err := run([]string{"verify", "-ref", verPath, "-delta", revPath, "-version", refPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"invert"}); err == nil {
		t.Fatal("missing flags accepted")
	}
}
