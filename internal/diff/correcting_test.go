package diff

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCorrectingByName(t *testing.T) {
	a, err := ByName("correcting")
	if err != nil || a.Name() != "correcting" {
		t.Fatalf("ByName: %v, %v", a, err)
	}
}

func TestCorrectingRecoversShortMatches(t *testing.T) {
	// Build a version whose only matches are 10-byte runs — below the
	// coarse 16-byte seed, above the fine 8-byte seed.
	rng := rand.New(rand.NewSource(31))
	ref := make([]byte, 16<<10)
	rng.Read(ref)
	version := make([]byte, 0, 16<<10)
	for at := 0; at+10 <= len(ref) && len(version) < 12<<10; at += 128 {
		version = append(version, ref[at:at+10]...)
		junk := make([]byte, 6)
		rng.Read(junk)
		version = append(version, junk...)
	}

	coarse := NewLinear() // 16-byte seeds: finds nothing
	corrected := NewCorrecting(coarse)

	dc := roundTrip(t, coarse, ref, version)
	dr := roundTrip(t, corrected, ref, version)
	if dr.AddedBytes() >= dc.AddedBytes() {
		t.Fatalf("correction did not help: %d vs %d added bytes",
			dr.AddedBytes(), dc.AddedBytes())
	}
	if dr.NumCopies() == 0 {
		t.Fatal("correction recovered no copies")
	}
}

func TestCorrectingNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for round := 0; round < 5; round++ {
		ref := make([]byte, 16<<10)
		rng.Read(ref)
		version := mutate(rng, ref, rng.Intn(20))
		base := NewLinear()
		corr := NewCorrecting(base)
		db := roundTrip(t, base, ref, version)
		dc := roundTrip(t, corr, ref, version)
		if dc.AddedBytes() > db.AddedBytes() {
			t.Fatalf("round %d: correction increased adds %d -> %d",
				round, db.AddedBytes(), dc.AddedBytes())
		}
	}
}

func TestCorrectingOverBlockwise(t *testing.T) {
	// Correction helps coarse block-granular diffs most: unaligned edits
	// stop whole blocks from matching, and the fine pass recovers them.
	rng := rand.New(rand.NewSource(33))
	ref := make([]byte, 32<<10)
	rng.Read(ref)
	version := append([]byte(nil), ref[:777]...) // unaligned prefix cut
	version = append(version, ref[1000:]...)
	blocky := NewBlockwise()
	corrected := NewCorrecting(blocky)
	db := roundTrip(t, blocky, ref, version)
	dc := roundTrip(t, corrected, ref, version)
	if dc.AddedBytes() >= db.AddedBytes() {
		t.Fatalf("correction over blockwise: %d vs %d added",
			dc.AddedBytes(), db.AddedBytes())
	}
}

func TestCorrectingThresholdClamp(t *testing.T) {
	c := NewCorrecting(nil, WithThreshold(1))
	if c.threshold != 16 {
		t.Fatalf("threshold clamped to %d, want 16", c.threshold)
	}
}

func TestCorrectingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, rng.Intn(8<<10)+64)
		rng.Read(ref)
		version := mutate(rng, ref, rng.Intn(10))
		c := NewCorrecting(NewLinear())
		d, err := c.Diff(ref, version)
		if err != nil {
			return false
		}
		if d.Validate() != nil {
			return false
		}
		got, err := d.Apply(ref)
		if err != nil {
			return false
		}
		return bytes.Equal(got, version)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
