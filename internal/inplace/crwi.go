package inplace

import (
	"ipdelta/internal/delta"
)

// This file contains command-level realizations of the CRWI digraph
// constructions the paper uses in its analysis: the quadratic-edge example
// of Figure 3 (§6) and the adversarial binary tree of Figure 2 (§5). Both
// return genuine delta files, so the whole pipeline — digraph construction,
// topological sort, cycle breaking, in-place application — can be driven
// over them, not just the abstract digraphs.

// QuadraticDelta builds the Figure 3 example: a file of length L = b²
// split into b blocks of b bytes. Every block of the new file except the
// first is a copy of the reference's first block, and the first block is
// rebuilt from b length-1 copies. Each length-1 command writes into every
// long command's read interval, so the CRWI digraph has (b−1)·b = L−b
// edges — Θ(|C|²) for |C| = 2b−1 commands, while still respecting the
// Lemma 1 bound of at most L edges.
//
// The length-1 copies read their own write offset, so they conflict with
// nothing (a command cannot conflict with itself) and the digraph is
// acyclic: conversion must succeed with zero copies converted to adds.
func QuadraticDelta(b int) *delta.Delta {
	if b < 2 {
		b = 2
	}
	l := int64(b) * int64(b)
	d := &delta.Delta{RefLen: l, VersionLen: l}
	// Long copies: blocks 1..b-1 each copy reference block 0.
	for i := 1; i < b; i++ {
		d.Commands = append(d.Commands, delta.NewCopy(0, int64(i)*int64(b), int64(b)))
	}
	// Short copies: block 0 is assembled from b length-1 copies, each
	// reading the byte it overwrites.
	for j := 0; j < b; j++ {
		d.Commands = append(d.Commands, delta.NewCopy(int64(j), int64(j), 1))
	}
	return d
}

// AdversarialDelta realizes the Figure 2 digraph as an actual delta file: a
// complete binary tree of the given depth in which every internal copy
// (including the root) reads a span straddling the boundary between its two
// children's write intervals, and every leaf reads from inside the root's
// write interval — closing one cycle per leaf through the root.
//
// Leaves copy leafLen bytes, internal vertices 2·leafLen; read intervals of
// distinct leaves may overlap (only writes must be disjoint), so all leaves
// read the same root bytes. With the cost function cost = l − |f|, every
// leaf is the strict minimum of its cycle, so the locally-minimum policy
// converts all 2^depth leaves (≈ 2^depth·leafLen bytes of lost compression)
// where converting the root alone (2·leafLen bytes) is globally optimal —
// the paper's example of locally-minimum being arbitrarily worse.
//
// Write intervals are laid out with one-byte gaps (covered by add commands)
// between family blocks so no unintended read/write intersections arise.
// leafLen must be at least 16 so varint from-offset sizes cannot perturb
// the cost ordering.
func AdversarialDelta(depth, leafLen int) *delta.Delta {
	if depth < 1 {
		depth = 1
	}
	if leafLen < 16 {
		leafLen = 16
	}
	n := (1 << (depth + 1)) - 1 // vertices, heap numbering, 0 = root
	firstLeaf := (1 << depth) - 1

	length := make([]int64, n)
	for v := 0; v < n; v++ {
		if v >= firstLeaf {
			length[v] = int64(leafLen)
		} else {
			length[v] = 2 * int64(leafLen)
		}
	}

	// Write layout: root block first, then each level's sibling pairs laid
	// out contiguously (so a parent's read can straddle the pair's internal
	// boundary), with one-byte gaps separating blocks.
	to := make([]int64, n)
	cursor := int64(1) // gap byte at offset 0
	to[0] = cursor
	cursor += length[0] + 1
	for lvl := 1; lvl <= depth; lvl++ {
		start := (1 << lvl) - 1
		end := (1 << (lvl + 1)) - 1
		for v := start; v < end; v += 2 {
			to[v] = cursor
			cursor += length[v]
			to[v+1] = cursor
			cursor += length[v+1] + 1 // gap after each sibling pair
		}
	}
	versionLen := cursor

	// Read placement. Internal v reads x bytes from the tail of child1 and
	// length[v]−x bytes from the head of child2, with x chosen so the read
	// stays inside the pair's block: x ≥ length[v]−length[child2], x ≥ 1.
	from := make([]int64, n)
	for v := 0; v < firstLeaf; v++ {
		c1, c2 := 2*v+1, 2*v+2
		x := length[v] - length[c2]
		if x < 1 {
			x = 1
		}
		from[v] = to[c1] + length[c1] - x
	}
	// Leaves all read the first leafLen bytes of the root's write interval.
	for v := firstLeaf; v < n; v++ {
		from[v] = to[0]
	}

	d := &delta.Delta{RefLen: versionLen, VersionLen: versionLen}
	for v := 0; v < n; v++ {
		d.Commands = append(d.Commands, delta.NewCopy(from[v], to[v], length[v]))
	}
	// Cover every gap byte with adds so the delta is valid.
	covered := make([]bool, versionLen)
	for v := 0; v < n; v++ {
		end := to[v] + length[v]
		for p := to[v]; p < end; p++ {
			covered[p] = true
		}
	}
	for p := int64(0); p < versionLen; p++ {
		if !covered[p] {
			d.Commands = append(d.Commands, delta.NewAdd(p, []byte{'.'}))
		}
	}
	return d
}
