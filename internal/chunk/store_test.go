package chunk

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"ipdelta/internal/obs"
)

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestStoreDedupAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStore(WithObserver(reg))
	a := randBytes(1, 4096)
	b := randBytes(2, 4096)

	ra := s.Ingest(a)
	if s.Ingest(a) != ra {
		t.Fatal("same content produced different refs")
	}
	s.Ingest(b)

	snap := reg.Snapshot()
	if got := snap.Counters["ipdelta_chunk_dedup_hits_total"]; got != 1 {
		t.Fatalf("dedup hits = %d, want 1", got)
	}
	if got := snap.Counters["ipdelta_chunk_dedup_misses_total"]; got != 2 {
		t.Fatalf("dedup misses = %d, want 2", got)
	}
	if got := snap.Counters["ipdelta_chunk_dedup_bytes_saved_total"]; got != 4096 {
		t.Fatalf("bytes saved = %d, want 4096", got)
	}
	got, err := s.Chunk(ra.ID)
	if err != nil || !bytes.Equal(got, a) {
		t.Fatalf("Chunk returned wrong content (%v)", err)
	}
	if _, err := s.Chunk(IDOf([]byte("absent"))); err == nil {
		t.Fatal("absent chunk resolved")
	}
}

func TestStoreIngestCopiesData(t *testing.T) {
	s := NewStore()
	buf := randBytes(3, 1024)
	want := append([]byte(nil), buf...)
	ref := s.Ingest(buf)
	for i := range buf {
		buf[i] = 0 // caller reuses its buffer
	}
	got, err := s.Chunk(ref.ID)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatal("store aliased the caller's buffer")
	}
}

func TestStoreRefcountAndLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	// Budget for exactly two unpinned 1 KiB chunks.
	s := NewStore(WithMaxUnpinned(2048), WithObserver(reg))
	chunks := make([]Ref, 4)
	for k := range chunks {
		chunks[k] = s.Ingest(randBytes(int64(10+k), 1024))
	}
	// Pinned chunks never evict, regardless of budget.
	if st := s.Stats(); st.Chunks != 4 || st.PinnedBytes != 4096 || st.UnpinnedBytes != 0 {
		t.Fatalf("unexpected pinned stats: %+v", st)
	}
	// Release three: the budget holds two, so the least recently
	// released one must go.
	s.Release(chunks[0].ID)
	s.Release(chunks[1].ID)
	s.Release(chunks[2].ID)
	if s.Contains(chunks[0].ID) {
		t.Fatal("LRU kept the oldest unpinned chunk past the budget")
	}
	if !s.Contains(chunks[1].ID) || !s.Contains(chunks[2].ID) {
		t.Fatal("recently released chunks evicted early")
	}
	if got := reg.Snapshot().Counters["ipdelta_chunk_evictions_total"]; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// Re-ingesting a still-resident unpinned chunk is a dedup hit that
	// re-pins it.
	before := reg.Snapshot().Counters["ipdelta_chunk_dedup_hits_total"]
	s.Ingest(randBytes(11, 1024)) // same content as chunks[1]
	if got := reg.Snapshot().Counters["ipdelta_chunk_dedup_hits_total"]; got != before+1 {
		t.Fatal("re-ingest of resident unpinned chunk did not dedup")
	}
	if st := s.Stats(); st.PinnedBytes != 2048 {
		t.Fatalf("re-pin did not move the chunk out of the unpinned set: %+v", st)
	}
}

func TestStoreDoubleReleaseHarmless(t *testing.T) {
	s := NewStore()
	ref := s.Ingest(randBytes(5, 512))
	s.Release(ref.ID)
	s.Release(ref.ID) // refs already 0: must not underflow or panic
	s.Release(IDOf([]byte("never stored")))
	if !s.Contains(ref.ID) {
		t.Fatal("released chunk inside budget should remain resident")
	}
}

// TestStoreConcurrentIngest hammers the singleflight path: many
// goroutines ingest the same small set of chunks; afterwards each chunk
// is stored once with the right refcount-visible behaviour.
func TestStoreConcurrentIngest(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStore(WithObserver(reg))
	contents := make([][]byte, 8)
	for k := range contents {
		contents[k] = randBytes(int64(100+k), 2048)
	}
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)))
			for i := 0; i < 200; i++ {
				c := contents[rng.Intn(len(contents))]
				ref := s.Ingest(c)
				got, err := s.Chunk(ref.ID)
				if err != nil || !bytes.Equal(got, c) {
					t.Errorf("concurrent ingest returned wrong content (%v)", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if st := s.Stats(); st.Chunks != len(contents) {
		t.Fatalf("resident chunks = %d, want %d", st.Chunks, len(contents))
	}
	if got := snap.Counters["ipdelta_chunk_dedup_misses_total"]; got != int64(len(contents)) {
		t.Fatalf("misses = %d, want %d (each chunk stored exactly once)", got, len(contents))
	}
	wantHits := int64(workers*200 - len(contents))
	if got := snap.Counters["ipdelta_chunk_dedup_hits_total"] + snap.Counters["ipdelta_chunk_ingest_flights_total"]; got < wantHits {
		t.Fatalf("hits+flights = %d, want >= %d", got, wantHits)
	}
}

func TestIngestAllAndMaterialize(t *testing.T) {
	ck, _ := NewChunker(Params{Min: 256, Avg: 1024, Max: 4096})
	s := NewStore()
	data := randBytes(77, 100<<10)
	r := s.IngestAll(ck, data)
	if got := r.Total(); got != int64(len(data)) {
		t.Fatalf("recipe total %d, want %d", got, len(data))
	}
	out, err := Materialize(nil, r, s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("materialized bytes differ from the ingested image")
	}
	// Cross-version dedup: a second image sharing a long prefix reuses
	// those chunks.
	data2 := append(append([]byte(nil), data[:64<<10]...), randBytes(78, 36<<10)...)
	reg := obs.NewRegistry()
	s2 := NewStore(WithObserver(reg))
	s2.IngestAll(ck, data)
	s2.IngestAll(ck, data2)
	if hits := reg.Snapshot().Counters["ipdelta_chunk_dedup_hits_total"]; hits == 0 {
		t.Fatal("no cross-version chunk sharing on a 64 KiB shared prefix")
	}
}

func TestMaterializeRejectsCorruptChunk(t *testing.T) {
	ck, _ := NewChunker(Params{Min: 256, Avg: 1024, Max: 4096})
	s := NewStore()
	data := randBytes(79, 16<<10)
	r := s.IngestAll(ck, data)
	// Lie about one chunk's identity: CRC mismatch must be caught.
	bad := r
	bad.Chunks = append([]Ref(nil), r.Chunks...)
	bad.Chunks[1].CRC ^= 0xDEADBEEF
	if _, err := Materialize(nil, bad, s); err == nil {
		t.Fatal("corrupt per-chunk CRC accepted")
	}
	// A missing chunk must error, not panic.
	bad2 := r
	bad2.Chunks = append([]Ref(nil), r.Chunks...)
	bad2.Chunks[0].ID = IDOf([]byte("gone"))
	if _, err := Materialize(nil, bad2, s); err == nil {
		t.Fatal("missing chunk accepted")
	}
}

func BenchmarkStoreIngestDedup(b *testing.B) {
	ck, _ := NewChunker(Params{})
	s := NewStore()
	data := randBytes(80, 4<<20)
	s.IngestAll(ck, data) // warm: every later ingest is a pure dedup hit
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.IngestAll(ck, data)
		s.ReleaseRecipe(r)
	}
}
