// Test package for the errpropagate analyzer. Named codec so its own
// functions count as target callees, the way the real codec package's do.
package codec

import (
	"errors"
	"fmt"
)

func Decode() ([]byte, error) { return nil, errors.New("truncated") }

func Encode(p []byte) error { return nil }

func helper() {}

func DropStmt() {
	Encode(nil) // want `error returned by codec.Encode is dropped`
	helper()
}

func DropBlank() []byte {
	b, _ := Decode() // want `assigned to _`
	return b
}

func Handled() ([]byte, error) {
	b, err := Decode()
	if err != nil {
		return nil, err
	}
	return b, Encode(b)
}

func DropDefer() {
	defer Encode(nil) // want `dropped`
}

func DropGo() {
	go Encode(nil) // want `dropped`
}

func Suppressed() {
	Encode(nil) //ipvet:ignore errpropagate -- best-effort prewarm
}

// Errors from non-target packages are someone else's policy.
func PrintOK() {
	fmt.Println("ok")
}
