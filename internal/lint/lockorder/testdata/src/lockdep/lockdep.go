// Test dependency package for lockorder: contributes the MuB → MuA edge
// to the global acquisition digraph through its EdgesFact. On its own the
// order is acyclic, so this package produces no diagnostics — the cycle
// appears only when the locks package adds the opposite edge.
package lockdep

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex

	state int
)

// BA acquires MuB then MuA; the deferred unlocks keep both held to the
// end of the body, the dominant idiom in the real store package.
func BA() {
	MuB.Lock()
	defer MuB.Unlock()
	MuA.Lock()
	defer MuA.Unlock()
	state++
}
