package delta

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// buildSwap returns a delta over an 8-byte file that swaps its two halves —
// the canonical example with a WR cycle of length 2.
func buildSwap() *Delta {
	return &Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []Command{
			NewCopy(4, 0, 4), // second half -> first
			NewCopy(0, 4, 4), // first half -> second
		},
	}
}

func TestOpString(t *testing.T) {
	if OpCopy.String() != "copy" || OpAdd.String() != "add" {
		t.Fatal("unexpected opcode names")
	}
	if got := Op(9).String(); got != "op(9)" {
		t.Fatalf("unknown op String() = %q", got)
	}
}

func TestCommandIntervals(t *testing.T) {
	c := NewCopy(10, 20, 5)
	if r := c.ReadInterval(); r.Lo != 10 || r.Hi != 14 {
		t.Errorf("copy read interval = %v", r)
	}
	if w := c.WriteInterval(); w.Lo != 20 || w.Hi != 24 {
		t.Errorf("copy write interval = %v", w)
	}
	a := NewAdd(3, []byte("abc"))
	if !a.ReadInterval().Empty() {
		t.Error("add command must have an empty read interval")
	}
	if w := a.WriteInterval(); w.Lo != 3 || w.Hi != 5 {
		t.Errorf("add write interval = %v", w)
	}
}

func TestCommandString(t *testing.T) {
	if got := NewCopy(1, 2, 3).String(); got != "copy⟨1,2,3⟩" {
		t.Errorf("copy String() = %q", got)
	}
	if got := NewAdd(7, []byte("xy")).String(); got != "add⟨7,2⟩" {
		t.Errorf("add String() = %q", got)
	}
	odd := Command{Op: Op(9), From: 1, To: 2, Length: 3}
	if got := odd.String(); !strings.Contains(got, "op(9)") {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestCommandEqual(t *testing.T) {
	a := NewAdd(0, []byte("abc"))
	b := NewAdd(0, []byte("abc"))
	if !a.Equal(b) {
		t.Error("identical adds must be equal")
	}
	c := NewAdd(0, []byte("abd"))
	if a.Equal(c) {
		t.Error("adds with different data must differ")
	}
	if NewCopy(0, 0, 1).Equal(NewCopy(0, 0, 2)) {
		t.Error("copies with different length must differ")
	}
}

func TestCounts(t *testing.T) {
	d := &Delta{
		RefLen:     10,
		VersionLen: 10,
		Commands: []Command{
			NewCopy(0, 0, 4),
			NewAdd(4, []byte("abc")),
			NewCopy(7, 7, 3),
		},
	}
	if d.NumCopies() != 2 || d.NumAdds() != 1 {
		t.Fatalf("counts = %d copies, %d adds", d.NumCopies(), d.NumAdds())
	}
	if d.AddedBytes() != 3 {
		t.Errorf("AddedBytes() = %d", d.AddedBytes())
	}
	if d.CopiedBytes() != 7 {
		t.Errorf("CopiedBytes() = %d", d.CopiedBytes())
	}
}

func TestClone(t *testing.T) {
	d := &Delta{
		RefLen:     4,
		VersionLen: 4,
		Commands:   []Command{NewAdd(0, []byte("abcd"))},
	}
	c := d.Clone()
	c.Commands[0].Data[0] = 'z'
	c.Commands[0].To = 99
	if d.Commands[0].Data[0] != 'a' || d.Commands[0].To != 0 {
		t.Fatal("Clone shares state with original")
	}
}

func TestValidateAccepts(t *testing.T) {
	tests := []struct {
		name string
		d    *Delta
	}{
		{
			name: "copies and adds covering exactly",
			d: &Delta{
				RefLen:     8,
				VersionLen: 10,
				Commands: []Command{
					NewCopy(0, 0, 5),
					NewAdd(5, []byte("ab")),
					NewCopy(3, 7, 3),
				},
			},
		},
		{
			name: "empty version",
			d:    &Delta{RefLen: 8, VersionLen: 0},
		},
		{
			name: "pure add from empty reference",
			d: &Delta{
				RefLen:     0,
				VersionLen: 3,
				Commands:   []Command{NewAdd(0, []byte("abc"))},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.d.Validate(); err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name string
		d    *Delta
		want error
	}{
		{
			name: "bad opcode",
			d: &Delta{RefLen: 4, VersionLen: 4,
				Commands: []Command{{Op: Op(7), Length: 4}}},
			want: ErrBadOp,
		},
		{
			name: "negative offset",
			d: &Delta{RefLen: 4, VersionLen: 4,
				Commands: []Command{NewCopy(-1, 0, 4)}},
			want: ErrNegativeOffset,
		},
		{
			name: "zero length",
			d: &Delta{RefLen: 4, VersionLen: 4,
				Commands: []Command{NewCopy(0, 0, 0), NewCopy(0, 0, 4)}},
			want: ErrZeroLength,
		},
		{
			name: "copy read out of bounds",
			d: &Delta{RefLen: 4, VersionLen: 4,
				Commands: []Command{NewCopy(2, 0, 4)}},
			want: ErrReadOOB,
		},
		{
			name: "write out of bounds",
			d: &Delta{RefLen: 8, VersionLen: 4,
				Commands: []Command{NewCopy(0, 2, 4)}},
			want: ErrWriteOOB,
		},
		{
			name: "overlapping writes",
			d: &Delta{RefLen: 8, VersionLen: 8,
				Commands: []Command{NewCopy(0, 0, 5), NewCopy(0, 4, 4)}},
			want: ErrOverlap,
		},
		{
			name: "coverage gap",
			d: &Delta{RefLen: 8, VersionLen: 8,
				Commands: []Command{NewCopy(0, 0, 4)}},
			want: ErrCoverage,
		},
		{
			name: "add length mismatch",
			d: &Delta{RefLen: 0, VersionLen: 4,
				Commands: []Command{{Op: OpAdd, To: 0, Length: 4, Data: []byte("ab")}}},
			want: ErrAddLength,
		},
		{
			name: "copy with data",
			d: &Delta{RefLen: 4, VersionLen: 4,
				Commands: []Command{{Op: OpCopy, Length: 4, Data: []byte("ab")}}},
			want: ErrAddLength,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.d.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !errors.Is(err, tt.want) {
				t.Fatalf("Validate() = %v, want cause %v", err, tt.want)
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("error %v is not a *ValidationError", err)
			}
			if verr.Error() == "" {
				t.Error("empty error message")
			}
		})
	}
}

func TestApply(t *testing.T) {
	ref := []byte("the quick brown fox")
	d := &Delta{
		RefLen:     int64(len(ref)),
		VersionLen: 15,
		Commands: []Command{
			NewCopy(4, 0, 5),           // "quick"
			NewAdd(5, []byte(" red ")), // " red "
			NewCopy(16, 10, 3),         // "fox"
			NewAdd(13, []byte("es")),   // "es"
		},
	}
	got, err := d.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	if want := "quick red foxes"; string(got) != want {
		t.Fatalf("Apply() = %q, want %q", got, want)
	}
}

func TestApplyChecksRefLen(t *testing.T) {
	d := &Delta{RefLen: 10, VersionLen: 0}
	if _, err := d.Apply(make([]byte, 5)); err == nil {
		t.Fatal("Apply accepted wrong reference length")
	}
}

func TestApplyRejectsInvalidCommand(t *testing.T) {
	d := &Delta{RefLen: 4, VersionLen: 4, Commands: []Command{NewCopy(0, 2, 4)}}
	if _, err := d.Apply(make([]byte, 4)); !errors.Is(err, ErrWriteOOB) {
		t.Fatalf("Apply() error = %v, want ErrWriteOOB", err)
	}
}

func TestWRConflicts(t *testing.T) {
	d := buildSwap()
	conflicts := d.WRConflicts()
	if len(conflicts) != 1 {
		t.Fatalf("WRConflicts() = %v, want exactly one", conflicts)
	}
	if conflicts[0] != [2]int{0, 1} {
		t.Fatalf("conflict = %v, want [0 1]", conflicts[0])
	}

	// A delta whose copies only read what no earlier command wrote has none.
	clean := &Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands:   []Command{NewCopy(0, 0, 4), NewCopy(4, 4, 4)},
	}
	if got := clean.WRConflicts(); len(got) != 0 {
		t.Fatalf("clean delta reported conflicts: %v", got)
	}

	// Adds never read, so an add before a copy cannot conflict as reader,
	// but a write by an add landing in a later copy's read interval does.
	addFirst := &Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []Command{
			NewAdd(0, []byte("abcd")),
			NewCopy(0, 4, 4), // reads [0,3] which the add just wrote
		},
	}
	if got := addFirst.WRConflicts(); len(got) != 1 {
		t.Fatalf("add-then-copy conflicts = %v, want one", got)
	}
}

func TestCheckInPlace(t *testing.T) {
	bad := buildSwap()
	err := bad.CheckInPlace()
	var cerr *ConflictError
	if !errors.As(err, &cerr) {
		t.Fatalf("CheckInPlace() = %v, want *ConflictError", err)
	}
	if cerr.Index != 1 {
		t.Errorf("conflict at command %d, want 1", cerr.Index)
	}
	if cerr.Error() == "" {
		t.Error("empty conflict message")
	}

	good := &Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []Command{
			NewCopy(4, 0, 4),
			NewAdd(4, []byte("wxyz")), // replaces the conflicting copy
		},
	}
	if err := good.CheckInPlace(); err != nil {
		t.Fatalf("CheckInPlace() = %v, want nil", err)
	}
}

func TestApplyInPlaceMatchesApply(t *testing.T) {
	ref := []byte("abcdefgh")
	// In-place-safe ordering: read [4,7] before writing it.
	d := &Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []Command{
			NewCopy(4, 0, 4),
			NewAdd(4, []byte("ABCD")),
		},
	}
	want, err := d.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.InPlaceBufLen())
	copy(buf, ref)
	if err := d.ApplyInPlace(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:d.VersionLen], want) {
		t.Fatalf("in-place = %q, want %q", buf[:d.VersionLen], want)
	}
}

func TestApplyInPlaceGrowingAndShrinking(t *testing.T) {
	// Growing version: buffer must be version-sized.
	grow := &Delta{
		RefLen:     4,
		VersionLen: 8,
		Commands: []Command{
			NewCopy(0, 4, 4),          // move old content right first
			NewAdd(0, []byte("head")), // then write the new head
		},
	}
	if grow.InPlaceBufLen() != 8 {
		t.Fatalf("InPlaceBufLen() = %d, want 8", grow.InPlaceBufLen())
	}
	buf := make([]byte, 8)
	copy(buf, "tail")
	if err := grow.ApplyInPlace(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "headtail" {
		t.Fatalf("grow result = %q", buf)
	}

	// Shrinking version: buffer stays reference-sized.
	shrink := &Delta{
		RefLen:     8,
		VersionLen: 4,
		Commands:   []Command{NewCopy(4, 0, 4)},
	}
	if shrink.InPlaceBufLen() != 8 {
		t.Fatalf("InPlaceBufLen() = %d, want 8", shrink.InPlaceBufLen())
	}
	buf2 := []byte("xxxxtail")
	if err := shrink.ApplyInPlace(buf2); err != nil {
		t.Fatal(err)
	}
	if string(buf2[:4]) != "tail" {
		t.Fatalf("shrink result = %q", buf2[:4])
	}
}

func TestApplyInPlaceScratchTooSmall(t *testing.T) {
	d := &Delta{RefLen: 8, VersionLen: 8}
	if err := d.ApplyInPlace(make([]byte, 7)); !errors.Is(err, ErrScratchTooSmall) {
		t.Fatalf("error = %v, want ErrScratchTooSmall", err)
	}
}

func TestApplyInPlaceRejectsInvalidCommand(t *testing.T) {
	d := &Delta{RefLen: 4, VersionLen: 4, Commands: []Command{NewCopy(0, 0, 5)}}
	err := d.ApplyInPlace(make([]byte, 4))
	if err == nil {
		t.Fatal("ApplyInPlace accepted out-of-bounds copy")
	}
}

func TestApplyInPlaceCorruptsOnConflict(t *testing.T) {
	// The swap delta violates Equation 2; applying it in place must give a
	// result that differs from the true version — this is exactly the
	// corruption scenario from the paper's introduction.
	d := buildSwap()
	ref := []byte("AAAABBBB")
	want, err := d.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), ref...)
	if err := d.ApplyInPlace(buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, want) {
		t.Fatal("conflicting delta applied in place should corrupt the output")
	}
	// Specifically, both halves end up with the old second half.
	if string(buf) != "BBBBBBBB" {
		t.Fatalf("corrupted result = %q, want BBBBBBBB", buf)
	}
}

func TestDirectionalSelfOverlapCopies(t *testing.T) {
	// A single copy whose read and write intervals overlap must be applied
	// directionally (§4.1). Exercise both directions and several buffer
	// granularities, including 1 byte.
	for _, bufSize := range []int{1, 2, 3, 4096} {
		// f > t: shift left.
		left := &Delta{
			RefLen:     8,
			VersionLen: 6,
			Commands:   []Command{NewCopy(2, 0, 6)},
		}
		buf := []byte("01234567")
		if err := left.ApplyInPlaceBuf(buf, bufSize); err != nil {
			t.Fatal(err)
		}
		if string(buf[:6]) != "234567" {
			t.Fatalf("bufSize %d: shift left = %q", bufSize, buf[:6])
		}

		// f < t: shift right.
		right := &Delta{
			RefLen:     8,
			VersionLen: 8,
			Commands: []Command{
				NewCopy(0, 2, 6),
				NewAdd(0, []byte("XY")),
			},
		}
		buf = []byte("01234567")
		if err := right.ApplyInPlaceBuf(buf, bufSize); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "XY012345" {
			t.Fatalf("bufSize %d: shift right = %q", bufSize, buf)
		}
	}
}

func TestApplyInPlaceBufRejectsBadSize(t *testing.T) {
	d := &Delta{RefLen: 1, VersionLen: 1, Commands: []Command{NewCopy(0, 0, 1)}}
	if err := d.ApplyInPlaceBuf(make([]byte, 1), 0); err == nil {
		t.Fatal("accepted zero buffer size")
	}
}

func TestApplyInPlaceObserved(t *testing.T) {
	d := &Delta{
		RefLen:     4,
		VersionLen: 4,
		Commands:   []Command{NewCopy(0, 0, 2), NewAdd(2, []byte("zz"))},
	}
	var seen []Op
	buf := []byte("abcd")
	err := d.ApplyInPlaceObserved(buf, func(_ int, c Command) error {
		seen = append(seen, c.Op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != OpCopy || seen[1] != OpAdd {
		t.Fatalf("observed %v", seen)
	}

	// An observer error aborts mid-apply.
	stop := errors.New("power cut")
	buf = []byte("abcd")
	err = d.ApplyInPlaceObserved(buf, func(i int, _ Command) error {
		if i == 1 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("error = %v, want power cut", err)
	}
	if string(buf[2:]) != "cd" {
		t.Fatal("commands after the failure must not have been applied")
	}
}
