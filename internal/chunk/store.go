package chunk

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"ipdelta/internal/obs"
)

// ErrNoSuchChunk reports a chunk address the store cannot resolve.
var ErrNoSuchChunk = errors.New("chunk: no such chunk")

// storeMetrics holds the pre-resolved handles of an observed Store.
type storeMetrics struct {
	dedupHits  *obs.Counter   // ingests that found the chunk already present
	dedupMiss  *obs.Counter   // ingests that stored a new chunk
	savedBytes *obs.Counter   // bytes NOT stored thanks to dedup
	storedByte *obs.Counter   // bytes stored for new chunks
	evictions  *obs.Counter   // unpinned chunks dropped by the LRU bound
	flights    *obs.Counter   // ingests that waited on a concurrent twin
	resident   *obs.Gauge     // bytes currently resident (pinned + unpinned)
	sizes      *obs.Histogram // chunk-size distribution at ingest
}

func resolveStoreMetrics(r *obs.Registry) *storeMetrics {
	return &storeMetrics{
		dedupHits:  r.Counter("ipdelta_chunk_dedup_hits_total"),
		dedupMiss:  r.Counter("ipdelta_chunk_dedup_misses_total"),
		savedBytes: r.Counter("ipdelta_chunk_dedup_bytes_saved_total"),
		storedByte: r.Counter("ipdelta_chunk_stored_bytes_total"),
		evictions:  r.Counter("ipdelta_chunk_evictions_total"),
		flights:    r.Counter("ipdelta_chunk_ingest_flights_total"),
		resident:   r.Gauge("ipdelta_chunk_resident_bytes"),
		sizes:      r.Histogram("ipdelta_chunk_size_bytes", obs.SizeBuckets),
	}
}

// entry is one resident chunk. refs counts recipe references (pins);
// while refs is zero the entry sits in the unpinned LRU and may be
// evicted when the unpinned byte budget overflows.
type entry struct {
	data []byte
	refs int64
	el   *list.Element // non-nil while unpinned
}

// ingestFlight deduplicates concurrent ingests of the same new chunk:
// one goroutine copies and installs, late arrivals wait and then just
// take a reference — the singleflight pattern of the store cache.
type ingestFlight struct {
	wg sync.WaitGroup
}

// Store is a bounded, content-addressed chunk store. Chunks are
// refcounted: Ingest takes a reference, Release drops one. Chunks whose
// refcount is zero stay resident in an LRU (cheap re-ingest of content
// that comes back) until the unpinned byte budget evicts them. One Store
// may back any number of version stores — identical chunks ingested by
// different tenants are stored once and shared.
//
// A Store is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	chunks   map[ID]*entry
	lru      *list.List // of ID; front = most recently unpinned/touched
	unpinned int64      // bytes held by refs==0 entries
	maxUnpin int64
	inflight map[ID]*ingestFlight
	met      *storeMetrics
}

// DefaultMaxUnpinned bounds the unpinned resident set when no explicit
// budget is configured: 64 MiB of released-but-cached chunks.
const DefaultMaxUnpinned = 64 << 20

// StoreOption customizes a Store.
type StoreOption func(*Store)

// WithMaxUnpinned sets the byte budget for unpinned (refcount zero)
// chunks; <= 0 keeps the default. Pinned chunks are never evicted — a
// recipe that holds references can always materialize.
func WithMaxUnpinned(n int64) StoreOption {
	return func(s *Store) {
		if n > 0 {
			s.maxUnpin = n
		}
	}
}

// WithObserver attaches a metrics registry: dedup hit/miss/bytes-saved
// counters, the chunk-size histogram, eviction and resident-byte gauges.
func WithObserver(r *obs.Registry) StoreOption {
	return func(s *Store) { s.met = resolveStoreMetrics(r) }
}

// NewStore returns an empty chunk store.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		chunks:   make(map[ID]*entry),
		lru:      list.New(),
		maxUnpin: DefaultMaxUnpinned,
		inflight: make(map[ID]*ingestFlight),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Ingest stores data under its content address and takes one reference,
// returning the chunk's Ref. If the chunk is already resident the data
// is NOT copied again — that is the dedup win, and the hit/saved-bytes
// counters record it. Concurrent ingests of the same new chunk perform
// one copy (singleflight).
func (s *Store) Ingest(data []byte) Ref {
	ref := RefOf(data)
	if s.met != nil {
		s.met.sizes.Observe(ref.Length)
	}
	for {
		s.mu.Lock()
		if e, ok := s.chunks[ref.ID]; ok {
			s.pinLocked(e)
			s.mu.Unlock()
			if s.met != nil {
				s.met.dedupHits.Inc()
				s.met.savedBytes.Add(ref.Length)
			}
			return ref
		}
		if f, ok := s.inflight[ref.ID]; ok {
			s.mu.Unlock()
			if s.met != nil {
				s.met.flights.Inc()
			}
			f.wg.Wait()
			continue // the winner installed it; retry resolves to the hit path
		}
		f := &ingestFlight{}
		f.wg.Add(1)
		s.inflight[ref.ID] = f
		s.mu.Unlock()

		// Copy outside the lock: the store owns its bytes (callers may
		// reuse their buffers), and a large chunk copy must not stall
		// unrelated ingests.
		owned := make([]byte, len(data))
		copy(owned, data)

		s.mu.Lock()
		e := &entry{data: owned, refs: 1}
		s.chunks[ref.ID] = e
		delete(s.inflight, ref.ID)
		s.mu.Unlock()
		f.wg.Done()
		if s.met != nil {
			s.met.dedupMiss.Inc()
			s.met.storedByte.Add(ref.Length)
			s.met.resident.Add(ref.Length)
		}
		return ref
	}
}

// pinLocked takes a reference, removing the entry from the unpinned LRU
// if this is the first one back.
func (s *Store) pinLocked(e *entry) {
	e.refs++
	if e.el != nil {
		s.lru.Remove(e.el)
		e.el = nil
		s.unpinned -= int64(len(e.data)) //ipvet:ignore locksafe -- xxxLocked helper: every caller holds s.mu
	}
}

// Release drops one reference to id. When the last reference goes, the
// chunk moves to the unpinned LRU; overflowing the unpinned budget
// evicts the least recently used unpinned chunks for real.
func (s *Store) Release(id ID) {
	var freed int64
	s.mu.Lock()
	e, ok := s.chunks[id]
	if ok && e.refs > 0 {
		e.refs--
		if e.refs == 0 {
			e.el = s.lru.PushFront(id)
			s.unpinned += int64(len(e.data))
			freed = s.evictLocked()
		}
	}
	s.mu.Unlock()
	if freed > 0 && s.met != nil {
		s.met.resident.Add(-freed)
	}
}

// ReleaseRecipe drops one reference per chunk of r.
func (s *Store) ReleaseRecipe(r Recipe) {
	for _, c := range r.Chunks {
		s.Release(c.ID)
	}
}

// evictLocked enforces the unpinned byte budget, returning bytes freed.
func (s *Store) evictLocked() int64 {
	var freed int64
	for s.unpinned > s.maxUnpin {
		back := s.lru.Back()
		if back == nil {
			break
		}
		id := back.Value.(ID)
		e := s.chunks[id]
		s.lru.Remove(back)
		delete(s.chunks, id)
		s.unpinned -= int64(len(e.data)) //ipvet:ignore locksafe -- xxxLocked helper: every caller holds s.mu
		freed += int64(len(e.data))
		if s.met != nil {
			s.met.evictions.Inc()
		}
	}
	return freed
}

// Chunk implements Source: it returns the resident content of id. The
// slice is shared and read-only. Unpinned chunks are touched in the LRU.
func (s *Store) Chunk(id ID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.chunks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchChunk, id)
	}
	if e.el != nil {
		s.lru.MoveToFront(e.el)
	}
	return e.data, nil
}

// Contains reports whether id is resident (pinned or unpinned).
func (s *Store) Contains(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.chunks[id]
	return ok
}

// IngestAll splits data with ck and ingests every chunk, returning the
// version's recipe. This is the chunked ingest path: for a version that
// shares most content with anything previously ingested — by any tenant
// of this store — only the novel chunks cost storage.
func (s *Store) IngestAll(ck *Chunker, data []byte) Recipe {
	r := Recipe{Chunks: make([]Ref, 0, len(data)/ck.p.Avg+1)}
	ck.Split(data, func(chunk []byte) {
		r.Chunks = append(r.Chunks, s.Ingest(chunk))
	})
	return r
}

// Stats is a point-in-time summary of the store, for tests and tools.
type Stats struct {
	Chunks        int   // resident chunks (pinned + unpinned)
	PinnedBytes   int64 // bytes referenced by at least one recipe
	UnpinnedBytes int64 // bytes resident but unreferenced (LRU)
}

// Stats returns the current resident-set summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Chunks: len(s.chunks), UnpinnedBytes: s.unpinned}
	for _, e := range s.chunks {
		if e.refs > 0 {
			st.PinnedBytes += int64(len(e.data))
		}
	}
	return st
}
