package device

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ipdelta/internal/codec"
	"ipdelta/internal/corpus"
	"ipdelta/internal/delta"
	"ipdelta/internal/diff"
	"ipdelta/internal/inplace"
)

// buildInPlaceDelta creates an in-place reconstructible delta between ref
// and version, encoded in the given format.
func buildInPlaceDelta(t testing.TB, ref, version []byte, f codec.Format) []byte {
	t.Helper()
	d, err := diff.NewLinear().Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}
	ip, _, err := inplace.Convert(d, ref)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := codec.Encode(&buf, ip, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFlashBounds(t *testing.T) {
	f, err := NewFlash([]byte("abcd"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Capacity() != 8 {
		t.Fatalf("Capacity() = %d", f.Capacity())
	}
	buf := make([]byte, 4)
	if err := f.ReadAt(buf, 0); err != nil || string(buf) != "abcd" {
		t.Fatalf("ReadAt: %q, %v", buf, err)
	}
	if err := f.ReadAt(buf, 5); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds read error = %v", err)
	}
	if err := f.WriteAt(buf, 6); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds write error = %v", err)
	}
	if err := f.WriteAt([]byte("xy"), 4); err != nil {
		t.Fatal(err)
	}
	if got := f.Image(6); string(got) != "abcdxy" {
		t.Fatalf("Image = %q", got)
	}
	if _, err := NewFlash(make([]byte, 9), 8); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestFlashAccounting(t *testing.T) {
	f, _ := NewFlash(nil, 100)
	buf := make([]byte, 10)
	_ = f.WriteAt(buf, 0)
	_ = f.WriteAt(buf, 10)
	_ = f.ReadAt(buf, 0)
	s := f.Stats()
	if s.WriteOps != 2 || s.BytesWritten != 20 || s.ReadOps != 1 || s.BytesRead != 10 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFlashPowerCut(t *testing.T) {
	f, _ := NewFlash(nil, 100)
	f.FailAfterWrites(1)
	if err := f.WriteAt([]byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt([]byte("b"), 1); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("error = %v, want ErrPowerCut", err)
	}
	// The failed write must not have landed.
	buf := make([]byte, 2)
	_ = f.ReadAt(buf, 0)
	if buf[1] != 0 {
		t.Fatal("failed write modified flash")
	}
	f.FailAfterWrites(-1)
	if err := f.WriteAt([]byte("b"), 1); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceApplySimple(t *testing.T) {
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 32 << 10, ChangeRate: 0.08, Seed: 1})
	for _, f := range []codec.Format{codec.FormatOffsets, codec.FormatCompact, codec.FormatLegacyOffsets} {
		enc := buildInPlaceDelta(t, pair.Ref, pair.Version, f)
		capacity := int64(len(pair.Ref))
		if int64(len(pair.Version)) > capacity {
			capacity = int64(len(pair.Version))
		}
		flash, err := NewFlash(pair.Ref, capacity)
		if err != nil {
			t.Fatal(err)
		}
		dev := New(flash, int64(len(pair.Ref)), DefaultWorkBufSize)
		if err := dev.Apply(bytes.NewReader(enc)); err != nil {
			t.Fatalf("%v: Apply: %v", f, err)
		}
		if dev.Updating() {
			t.Fatalf("%v: update still pending", f)
		}
		if !bytes.Equal(dev.Image(), pair.Version) {
			t.Fatalf("%v: image mismatch", f)
		}
	}
}

func TestDeviceRejectsOrderedFormat(t *testing.T) {
	ref := []byte("0123456789abcdef")
	d, err := diff.Null{}.Diff(ref, []byte("new-contents-xyz"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := codec.Encode(&buf, d, codec.FormatOrdered); err != nil {
		t.Fatal(err)
	}
	flash, _ := NewFlash(ref, 32)
	dev := New(flash, int64(len(ref)), 64)
	if err := dev.Apply(&buf); !errors.Is(err, ErrNotInPlace) {
		t.Fatalf("error = %v, want ErrNotInPlace", err)
	}
}

func TestDeviceRejectsWrongImage(t *testing.T) {
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Text, Size: 8 << 10, ChangeRate: 0.05, Seed: 2})
	enc := buildInPlaceDelta(t, pair.Ref, pair.Version, codec.FormatCompact)
	flash, _ := NewFlash(pair.Ref[:4<<10], 32<<10)
	dev := New(flash, 4<<10, DefaultWorkBufSize) // image half the expected size
	if err := dev.Apply(bytes.NewReader(enc)); !errors.Is(err, ErrWrongVersion) {
		t.Fatalf("error = %v, want ErrWrongVersion", err)
	}
}

func TestDeviceRejectsOversizedVersion(t *testing.T) {
	ref := make([]byte, 64)
	version := make([]byte, 256)
	rand.New(rand.NewSource(3)).Read(version)
	enc := buildInPlaceDelta(t, ref, version, codec.FormatCompact)
	flash, _ := NewFlash(ref, 100) // too small for the new version
	dev := New(flash, 64, 64)
	if err := dev.Apply(bytes.NewReader(enc)); !errors.Is(err, ErrImageTooLarge) {
		t.Fatalf("error = %v, want ErrImageTooLarge", err)
	}
}

func TestDeviceGrowAndShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := make([]byte, 8<<10)
	rng.Read(ref)

	grown := append(append([]byte(nil), ref...), make([]byte, 4<<10)...)
	rng.Read(grown[len(ref):])
	enc := buildInPlaceDelta(t, ref, grown, codec.FormatCompact)
	flash, _ := NewFlash(ref, int64(len(grown)))
	dev := New(flash, int64(len(ref)), DefaultWorkBufSize)
	if err := dev.Apply(bytes.NewReader(enc)); err != nil {
		t.Fatal(err)
	}
	if dev.ImageLen() != int64(len(grown)) || !bytes.Equal(dev.Image(), grown) {
		t.Fatal("grow failed")
	}

	shrunk := grown[2<<10 : 6<<10]
	enc = buildInPlaceDelta(t, grown, shrunk, codec.FormatCompact)
	if err := dev.Apply(bytes.NewReader(enc)); err != nil {
		t.Fatal(err)
	}
	if dev.ImageLen() != int64(len(shrunk)) || !bytes.Equal(dev.Image(), shrunk) {
		t.Fatal("shrink failed")
	}
}

func TestDevicePowerCutResume(t *testing.T) {
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: 64 << 10, ChangeRate: 0.15, Seed: 5})
	enc := buildInPlaceDelta(t, pair.Ref, pair.Version, codec.FormatCompact)
	capacity := int64(len(pair.Ref))
	if int64(len(pair.Version)) > capacity {
		capacity = int64(len(pair.Version))
	}
	flash, err := NewFlash(pair.Ref, capacity)
	if err != nil {
		t.Fatal(err)
	}
	dev := New(flash, int64(len(pair.Ref)), 512)

	// Cut power repeatedly at increasing points until the update survives.
	cuts := 0
	for fail := int64(1); ; fail += 7 {
		flash.FailAfterWrites(fail)
		err := dev.Apply(bytes.NewReader(enc))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrPowerCut) {
			t.Fatalf("unexpected error: %v", err)
		}
		if !dev.Updating() {
			t.Fatal("device lost its pending-update state")
		}
		cuts++
		if cuts > 10000 {
			t.Fatal("update never completed")
		}
	}
	if cuts == 0 {
		t.Fatal("test never exercised a power cut")
	}
	if !bytes.Equal(dev.Image(), pair.Version) {
		t.Fatalf("image corrupt after %d power cuts", cuts)
	}
}

func TestDeviceResumeMismatchRejected(t *testing.T) {
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 16 << 10, ChangeRate: 0.10, Seed: 6})
	enc := buildInPlaceDelta(t, pair.Ref, pair.Version, codec.FormatCompact)
	flash, _ := NewFlash(pair.Ref, int64(len(pair.Ref))+(16<<10))
	dev := New(flash, int64(len(pair.Ref)), 256)
	flash.FailAfterWrites(3)
	if err := dev.Apply(bytes.NewReader(enc)); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("expected power cut, got %v", err)
	}
	flash.FailAfterWrites(-1)

	// A different delta must be rejected while the update is pending.
	other := buildInPlaceDelta(t, pair.Ref, append([]byte("zz"), pair.Version...), codec.FormatCompact)
	if err := dev.Apply(bytes.NewReader(other)); !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("error = %v, want ErrResumeMismatch", err)
	}
	// The right one resumes and completes.
	if err := dev.Apply(bytes.NewReader(enc)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dev.Image(), pair.Version) {
		t.Fatal("image mismatch after resume")
	}
}

func TestDevicePendingUpdate(t *testing.T) {
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Text, Size: 8 << 10, ChangeRate: 0.10, Seed: 7})
	enc := buildInPlaceDelta(t, pair.Ref, pair.Version, codec.FormatCompact)
	flash, _ := NewFlash(pair.Ref, 32<<10)
	dev := New(flash, int64(len(pair.Ref)), 256)
	if _, ok := dev.PendingUpdate(); ok {
		t.Fatal("fresh device reports a pending update")
	}
	wantCRC, err := dev.ImageCRC()
	if err != nil {
		t.Fatal(err)
	}
	flash.FailAfterWrites(2)
	if err := dev.Apply(bytes.NewReader(enc)); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("expected power cut, got %v", err)
	}
	p, ok := dev.PendingUpdate()
	if !ok {
		t.Fatal("no pending update after interruption")
	}
	if p.RefCRC != wantCRC || p.RefLen != int64(len(pair.Ref)) || p.VersionLen != int64(len(pair.Version)) {
		t.Fatalf("pending = %+v", p)
	}
}

func TestDeviceWorkBufMinimum(t *testing.T) {
	flash, _ := NewFlash(nil, 64)
	dev := New(flash, 0, 1)
	if len(dev.work) != 16 {
		t.Fatalf("work buffer %d bytes, want clamped to 16", len(dev.work))
	}
}

func TestQuickDeviceMatchesScratchApply(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pair := corpus.Generate(corpus.PairSpec{
			Profile:    corpus.Profile(rng.Intn(3) + 1),
			Size:       rng.Intn(16<<10) + 1024,
			ChangeRate: rng.Float64() * 0.4,
			Seed:       seed,
		})
		d, err := diff.NewLinear(diff.WithSeedLen(8)).Diff(pair.Ref, pair.Version)
		if err != nil {
			return false
		}
		ip, _, err := inplace.Convert(d, pair.Ref)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := codec.Encode(&buf, ip, codec.FormatCompact); err != nil {
			return false
		}
		capacity := ip.InPlaceBufLen()
		flash, err := NewFlash(pair.Ref, capacity)
		if err != nil {
			return false
		}
		dev := New(flash, int64(len(pair.Ref)), 128+rng.Intn(1024))
		if err := dev.Apply(&buf); err != nil {
			return false
		}
		return bytes.Equal(dev.Image(), pair.Version)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceCommandValidation(t *testing.T) {
	// A copy reading beyond flash capacity must surface ErrOutOfBounds.
	bad := &delta.Delta{
		RefLen:     16,
		VersionLen: 16,
		Commands:   []delta.Command{delta.NewCopy(0, 0, 16)},
	}
	var buf bytes.Buffer
	if _, err := codec.Encode(&buf, bad, codec.FormatOffsets); err != nil {
		t.Fatal(err)
	}
	// Device flash is smaller than the delta claims: capacity check fires.
	flash, _ := NewFlash(make([]byte, 8), 8)
	dev := New(flash, 8, 64)
	if err := dev.Apply(&buf); !errors.Is(err, ErrImageTooLarge) {
		t.Fatalf("error = %v, want ErrImageTooLarge", err)
	}
	// With enough capacity but a short image, the version check fires.
	flash2, _ := NewFlash(make([]byte, 8), 32)
	dev2 := New(flash2, 8, 64)
	var buf2 bytes.Buffer
	if _, err := codec.Encode(&buf2, bad, codec.FormatOffsets); err != nil {
		t.Fatal(err)
	}
	if err := dev2.Apply(&buf2); !errors.Is(err, ErrWrongVersion) {
		t.Fatalf("error = %v, want ErrWrongVersion", err)
	}
}

func TestDeviceNVRAMWear(t *testing.T) {
	// NVRAM writes are bounded: roughly one per chunk plus one per command
	// plus bookkeeping — far fewer than one per byte.
	pair := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: 16 << 10, ChangeRate: 0.05, Seed: 61})
	enc := buildInPlaceDelta(t, pair.Ref, pair.Version, codec.FormatCompact)
	flash, _ := NewFlash(pair.Ref, 64<<10)
	dev := New(flash, int64(len(pair.Ref)), 1024)
	if err := dev.Apply(bytes.NewReader(enc)); err != nil {
		t.Fatal(err)
	}
	writes := dev.NVWrites()
	if writes == 0 {
		t.Fatal("no NVRAM writes recorded")
	}
	bound := int64(len(pair.Version))/1024 + 4*int64(len(enc))/8 + 64
	if writes > bound {
		t.Fatalf("NVRAM wear %d exceeds bound %d", writes, bound)
	}
}
