package netupdate

import (
	"bytes"
	"testing"

	"ipdelta/internal/diff"
)

// TestUpdateSessionWithRecipeAlgorithm runs a full device update session
// with the server sourcing its deltas from chunk recipes — the recipe
// Algorithm plugged in through the ordinary option — and checks the
// device converges on the head image.
func TestUpdateSessionWithRecipeAlgorithm(t *testing.T) {
	history := makeHistory(3, 64<<10, 9)
	algo, err := diff.ByName("recipe")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(history, WithAlgorithm(algo))
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceFor(t, history[0], 128<<10)
	res, err := runSession(t, s, dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpToDate || res.DeltaBytes == 0 {
		t.Fatalf("result = %+v", res)
	}
	if !bytes.Equal(dev.Image(), s.Current()) {
		t.Fatal("device image is not the current version after a recipe-sourced update")
	}
	if res.DeltaBytes >= int64(len(s.Current())) {
		t.Fatalf("recipe-sourced delta (%d bytes) not smaller than the full image (%d)", res.DeltaBytes, len(s.Current()))
	}
}
