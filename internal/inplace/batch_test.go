package inplace

import (
	"bytes"
	"math/rand"
	"testing"

	"ipdelta/internal/delta"
	"ipdelta/internal/diff"
)

func batchJobs(t *testing.T, n int) ([]Job, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	jobs := make([]Job, 0, n)
	versions := make([][]byte, 0, n)
	for k := 0; k < n; k++ {
		ref := make([]byte, 8<<10)
		rng.Read(ref)
		version := mutateBytes(rng, ref)
		d, err := diff.NewLinear().Diff(ref, version)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{Delta: d, Ref: ref})
		versions = append(versions, version)
	}
	return jobs, versions
}

func TestConvertBatch(t *testing.T) {
	jobs, versions := batchJobs(t, 20)
	for _, workers := range []int{0, 1, 4, 64} {
		results := ConvertBatch(jobs, workers)
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for k, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, k, r.Err)
			}
			if r.Stats == nil {
				t.Fatalf("workers=%d job %d: nil stats", workers, k)
			}
			if err := r.Delta.CheckInPlace(); err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, k, err)
			}
			buf := make([]byte, r.Delta.InPlaceBufLen())
			copy(buf, jobs[k].Ref)
			if err := r.Delta.ApplyInPlace(buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf[:r.Delta.VersionLen], versions[k]) {
				t.Fatalf("workers=%d job %d: wrong version", workers, k)
			}
		}
	}
}

func TestConvertBatchMatchesSequential(t *testing.T) {
	jobs, _ := batchJobs(t, 8)
	parallel := ConvertBatch(jobs, 8)
	for k, job := range jobs {
		seq, st, err := Convert(job.Delta, job.Ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Commands) != len(parallel[k].Delta.Commands) {
			t.Fatalf("job %d: command counts differ", k)
		}
		for i := range seq.Commands {
			if !seq.Commands[i].Equal(parallel[k].Delta.Commands[i]) {
				t.Fatalf("job %d command %d differs (nondeterminism?)", k, i)
			}
		}
		if st.ConvertedCopies != parallel[k].Stats.ConvertedCopies {
			t.Fatalf("job %d: stats differ", k)
		}
	}
}

func TestConvertBatchErrors(t *testing.T) {
	good, _ := batchJobs(t, 1)
	bad := Job{
		Delta: &delta.Delta{RefLen: 4, VersionLen: 4,
			Commands: []delta.Command{delta.NewCopy(0, 2, 4)}},
		Ref: make([]byte, 4),
	}
	jobs := []Job{good[0], bad, {Delta: nil}}
	results := ConvertBatch(jobs, 2)
	if results[0].Err != nil {
		t.Fatalf("good job failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid delta accepted")
	}
	if results[2].Err == nil {
		t.Fatal("nil delta accepted")
	}
}

func TestConvertBatchEmpty(t *testing.T) {
	if got := ConvertBatch(nil, 4); len(got) != 0 {
		t.Fatalf("results = %v", got)
	}
}

func TestConvertBatchWithOptions(t *testing.T) {
	jobs, _ := batchJobs(t, 4)
	results := ConvertBatch(jobs, 4, WithScratchBudget(1<<20))
	for k, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Stats.ConvertedCopies != 0 {
			t.Fatalf("job %d converted %d copies despite a huge scratch budget",
				k, r.Stats.ConvertedCopies)
		}
	}
}
