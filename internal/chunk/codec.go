package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Recipe container wire format (self-verifying, mirroring the store
// container v2 discipline: a format-version byte, every claimed length
// bounds-checked before allocation, and checksums that make a bit flip a
// detected error rather than silently wrong content):
//
//	magic "IPRC" | version byte | uvarint chunk count | total-length uvarint
//	per chunk: 32-byte ID | uvarint length | 4-byte CRC32 (LE) of content
//	trailer: 4-byte CRC32 (LE) over everything preceding it
//
// The trailer CRC protects the IDs themselves (a flipped address would
// otherwise still "verify" — it would just fetch the wrong chunk, which
// the per-chunk CRC only catches if content is actually fetched).

// ErrRecipeCorrupt reports a recipe container that fails validation.
var ErrRecipeCorrupt = errors.New("chunk: corrupt recipe container")

var recipeMagic = [4]byte{'I', 'P', 'R', 'C'}

// recipeFormatVersion is the container format generation.
const recipeFormatVersion = 1

// maxRecipeChunkLen bounds a single chunk's claimed length: far above
// any real Max bound, far below anything that could overflow a sum.
const maxRecipeChunkLen = 1 << 31

// EncodeRecipe serializes r.
func EncodeRecipe(r Recipe) []byte {
	var tmp [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 5+2*binary.MaxVarintLen64+len(r.Chunks)*(len(ID{})+binary.MaxVarintLen64+4)+4)
	buf = append(buf, recipeMagic[:]...)
	buf = append(buf, recipeFormatVersion)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(r.Chunks)))]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(r.Total()))]...)
	for _, c := range r.Chunks {
		buf = append(buf, c.ID[:]...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(c.Length))]...)
		buf = binary.LittleEndian.AppendUint32(buf, c.CRC)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeRecipe parses a recipe container. Hostile input — truncations,
// bit flips, absurd chunk counts or lengths — yields ErrRecipeCorrupt,
// never a panic or an allocation proportional to a claimed count beyond
// what the input itself could describe.
func DecodeRecipe(data []byte) (Recipe, error) {
	if len(data) < 4+1+1+1+4 || [4]byte(data[:4]) != recipeMagic {
		return Recipe{}, ErrRecipeCorrupt
	}
	if data[4] != recipeFormatVersion {
		return Recipe{}, fmt.Errorf("%w: unsupported format version %d", ErrRecipeCorrupt, data[4])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return Recipe{}, fmt.Errorf("%w: container checksum", ErrRecipeCorrupt)
	}
	rest := body[5:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return Recipe{}, fmt.Errorf("%w: chunk count", ErrRecipeCorrupt)
	}
	rest = rest[n:]
	// Each chunk costs at least 32+1+4 bytes on the wire, so a count the
	// remaining input cannot carry is hostile — reject before allocating.
	const minPerChunk = len(ID{}) + 1 + 4
	if count > uint64(len(rest))/uint64(minPerChunk)+1 {
		return Recipe{}, fmt.Errorf("%w: chunk count exceeds input", ErrRecipeCorrupt)
	}
	total, n := binary.Uvarint(rest)
	if n <= 0 {
		return Recipe{}, fmt.Errorf("%w: total length", ErrRecipeCorrupt)
	}
	rest = rest[n:]
	r := Recipe{Chunks: make([]Ref, 0, count)}
	var sum uint64
	for k := uint64(0); k < count; k++ {
		if len(rest) < len(ID{}) {
			return Recipe{}, fmt.Errorf("%w: chunk %d truncated", ErrRecipeCorrupt, k)
		}
		var c Ref
		copy(c.ID[:], rest)
		rest = rest[len(ID{}):]
		length, n := binary.Uvarint(rest)
		if n <= 0 || length == 0 || length > maxRecipeChunkLen {
			return Recipe{}, fmt.Errorf("%w: chunk %d length", ErrRecipeCorrupt, k)
		}
		rest = rest[n:]
		if len(rest) < 4 {
			return Recipe{}, fmt.Errorf("%w: chunk %d CRC truncated", ErrRecipeCorrupt, k)
		}
		c.Length = int64(length)
		c.CRC = binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		sum += length
		r.Chunks = append(r.Chunks, c)
	}
	if len(rest) != 0 {
		return Recipe{}, fmt.Errorf("%w: %d trailing bytes", ErrRecipeCorrupt, len(rest))
	}
	if sum != total {
		return Recipe{}, fmt.Errorf("%w: chunk lengths sum to %d, header claims %d", ErrRecipeCorrupt, sum, total)
	}
	return r, nil
}
