package archive

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check the tables against schoolbook carry-less multiplication.
	slowMul := func(a, b byte) byte {
		var p byte
		for b > 0 {
			if b&1 != 0 {
				p ^= a
			}
			high := a&0x80 != 0
			a <<= 1
			if high {
				a ^= 0x1d
			}
			b >>= 1
		}
		return p
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := gfMul(byte(a), byte(b)), slowMul(byte(a), byte(b)); got != want {
				t.Fatalf("gfMul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d", got, a)
		}
		if got := gfDiv(byte(a), byte(a)); got != 1 {
			t.Fatalf("a/a = %d for a=%d", got, a)
		}
	}
	if gfMul(0, 7) != 0 || gfMul(7, 0) != 0 || gfDiv(0, 7) != 0 {
		t.Fatal("zero laws violated")
	}
}

func TestNewCoderRejectsBadShapes(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {-1, 2}, {1, -1}, {maxShards, 1}} {
		if _, err := NewCoder(tc[0], tc[1]); err == nil {
			t.Errorf("NewCoder(%d,%d): want error", tc[0], tc[1])
		}
	}
	if _, err := NewCoder(1, 0); err != nil {
		t.Errorf("NewCoder(1,0): %v", err)
	}
}

// subsets enumerates either every k-subset of n (when their count is
// small) or a deterministic sample, as index bitmasks.
func subsets(n, k int, limit int, rng *rand.Rand) []uint32 {
	var all []uint32
	var rec func(start int, mask uint32, left int)
	rec = func(start int, mask uint32, left int) {
		if len(all) > limit {
			return
		}
		if left == 0 {
			all = append(all, mask)
			return
		}
		for i := start; i <= n-left; i++ {
			rec(i+1, mask|1<<i, left-1)
		}
	}
	rec(0, 0, k)
	if len(all) <= limit {
		return all
	}
	// Too many to enumerate: deterministic sample of random k-subsets.
	out := make([]uint32, 0, limit)
	for len(out) < limit {
		var mask uint32
		for count := 0; count < k; {
			b := uint32(1) << rng.IntN(n)
			if mask&b == 0 {
				mask |= b
				count++
			}
		}
		out = append(out, mask)
	}
	return out
}

// TestReconstructFromAnyKSubset is the acceptance property: for every
// (k, m) with k+m <= 16, dropping all shards outside any k-subset still
// reconstructs every shard byte-for-byte. Subsets are exhaustive up to
// 512 per shape, then deterministically sampled.
func TestReconstructFromAnyKSubset(t *testing.T) {
	rng := rand.New(rand.NewPCG(20260808, 1))
	payload := make([]byte, 16*9)
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	for k := 1; k <= 15; k++ {
		for m := 1; k+m <= 16; m++ {
			coder, err := NewCoder(k, m)
			if err != nil {
				t.Fatal(err)
			}
			n := k + m
			shardSize := 9
			want := make([][]byte, n)
			for j := 0; j < k; j++ {
				want[j] = payload[j*shardSize : (j+1)*shardSize]
			}
			if err := coder.Encode(want); err != nil {
				t.Fatalf("k=%d m=%d encode: %v", k, m, err)
			}
			for _, mask := range subsets(n, k, 512, rng) {
				shards := make([][]byte, n)
				for j := 0; j < n; j++ {
					if mask&(1<<j) != 0 {
						shards[j] = append([]byte(nil), want[j]...)
					}
				}
				if err := coder.Reconstruct(shards); err != nil {
					t.Fatalf("k=%d m=%d mask=%b reconstruct: %v", k, m, mask, err)
				}
				for j := 0; j < n; j++ {
					if !bytes.Equal(shards[j], want[j]) {
						t.Fatalf("k=%d m=%d mask=%b shard %d mismatch", k, m, mask, j)
					}
				}
			}
		}
	}
}

func TestReconstructDataOnly(t *testing.T) {
	coder, err := NewCoder(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 7)
	for j := 0; j < 4; j++ {
		shards[j] = bytes.Repeat([]byte{byte(j + 1)}, 8)
	}
	if err := coder.Encode(shards); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), shards[1]...)
	shards[1] = nil // lost data shard
	shards[5] = nil // lost parity shard
	if err := coder.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[1], want) {
		t.Fatal("data shard 1 not restored")
	}
	if shards[5] != nil {
		t.Fatal("ReconstructData should leave parity missing")
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	coder, err := NewCoder(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 5)
	for j := 0; j < 3; j++ {
		shards[j] = []byte{1, 2, 3}
	}
	if err := coder.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[0], shards[1], shards[4] = nil, nil, nil
	if err := coder.Reconstruct(shards); err == nil {
		t.Fatal("want ErrTooFewShards")
	}
}

func TestEncodeRejectsUnequalShards(t *testing.T) {
	coder, err := NewCoder(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := coder.Encode([][]byte{{1, 2}, {3}, nil}); err == nil {
		t.Fatal("want ErrShardSize")
	}
	if err := coder.Encode([][]byte{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("want ErrShardCount")
	}
}
