package inplace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ipdelta/internal/delta"
	"ipdelta/internal/diff"
)

func swapDelta() *delta.Delta {
	return &delta.Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []delta.Command{
			delta.NewCopy(4, 0, 4),
			delta.NewCopy(0, 4, 4),
		},
	}
}

func TestScratchBudgetPreservesCopies(t *testing.T) {
	ref := []byte("AAAABBBB")
	d := swapDelta()
	out, st, err := Convert(d, ref, WithScratchBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	if st.StashedCopies != 1 || st.ConvertedCopies != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.ScratchUsed != 4 || out.ScratchRequired() != 4 {
		t.Fatalf("scratch accounting: %+v, required %d", st, out.ScratchRequired())
	}
	// No literal data in the delta at all.
	if out.AddedBytes() != 0 {
		t.Fatalf("added bytes = %d", out.AddedBytes())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := out.CheckInPlace(); err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), ref...)
	if err := out.ApplyInPlace(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "BBBBAAAA" {
		t.Fatalf("in-place scratch apply = %q", buf)
	}
}

func TestScratchBudgetTooSmallFallsBackToAdd(t *testing.T) {
	ref := []byte("AAAABBBB")
	d := swapDelta()
	out, st, err := Convert(d, ref, WithScratchBudget(3)) // victim is 4 bytes
	if err != nil {
		t.Fatal(err)
	}
	if st.StashedCopies != 0 || st.ConvertedCopies != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if out.ScratchRequired() != 0 {
		t.Fatal("fallback delta must not need scratch")
	}
}

func TestZeroBudgetMatchesPaperAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := make([]byte, 16<<10)
	rng.Read(ref)
	version := mutateBytes(rng, ref)
	d, err := diff.NewLinear().Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}
	plain, stPlain, err := Convert(d, ref)
	if err != nil {
		t.Fatal(err)
	}
	zero, stZero, err := Convert(d, ref, WithScratchBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	if stPlain.ConvertedCopies != stZero.ConvertedCopies || len(plain.Commands) != len(zero.Commands) {
		t.Fatal("zero budget diverged from the default algorithm")
	}
	for k := range plain.Commands {
		if !plain.Commands[k].Equal(zero.Commands[k]) {
			t.Fatalf("command %d differs", k)
		}
	}
	// Negative budgets clamp to zero.
	neg, _, err := Convert(d, ref, WithScratchBudget(-5))
	if err != nil {
		t.Fatal(err)
	}
	if neg.ScratchRequired() != 0 {
		t.Fatal("negative budget used scratch")
	}
}

func TestScratchBudgetOnAdversarialTree(t *testing.T) {
	// With enough scratch, every leaf conversion of the Figure 2 instance
	// becomes a stash: zero compression lost.
	depth, leafLen := 4, 32
	leaves := 1 << depth
	d := AdversarialDelta(depth, leafLen)
	ref := make([]byte, d.RefLen)
	rand.New(rand.NewSource(8)).Read(ref)

	out, st, err := Convert(d, ref, WithScratchBudget(int64(leaves*leafLen)))
	if err != nil {
		t.Fatal(err)
	}
	if st.StashedCopies != leaves || st.ConvertedCopies != 0 || st.ConvertedBytes != 0 {
		t.Fatalf("stats: %+v", st)
	}
	want, err := d.Apply(ref)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, out.InPlaceBufLen())
	copy(buf, ref)
	if err := out.ApplyInPlace(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:out.VersionLen], want) {
		t.Fatal("scratch conversion reconstructs the wrong version")
	}

	// Half the budget stashes some leaves, converts the rest.
	_, stHalf, err := Convert(d, ref, WithScratchBudget(int64(leaves*leafLen/2)))
	if err != nil {
		t.Fatal(err)
	}
	if stHalf.StashedCopies == 0 || stHalf.ConvertedCopies == 0 {
		t.Fatalf("half budget stats: %+v", stHalf)
	}
	if stHalf.StashedCopies+stHalf.ConvertedCopies != leaves {
		t.Fatalf("victim accounting: %+v", stHalf)
	}
}

func TestQuickScratchConversionCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, rng.Intn(4<<10)+64)
		rng.Read(ref)
		version := mutateBytes(rng, ref)
		d, err := diff.NewLinear(diff.WithSeedLen(8)).Diff(ref, version)
		if err != nil {
			return false
		}
		budget := rng.Int63n(int64(len(ref)) + 1)
		out, st, err := Convert(d, ref, WithScratchBudget(budget))
		if err != nil {
			return false
		}
		if out.Validate() != nil || out.CheckInPlace() != nil {
			return false
		}
		if st.ScratchUsed > budget || out.ScratchRequired() != st.ScratchUsed {
			return false
		}
		buf := make([]byte, out.InPlaceBufLen())
		copy(buf, ref)
		if out.ApplyInPlace(buf) != nil {
			return false
		}
		return bytes.Equal(buf[:out.VersionLen], version)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
