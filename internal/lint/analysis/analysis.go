// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API, built only on the standard library's
// go/ast and go/types. The container this repository grows in has no module
// proxy access, so rather than vendoring x/tools we implement the small
// surface the ipvet analyzers need: an Analyzer descriptor, a per-package
// Pass carrying syntax plus type information, and positional Diagnostics.
//
// The shape deliberately mirrors x/tools so the analyzers can be ported to
// the real framework by changing one import if the dependency ever becomes
// available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//ipvet:ignore <name>" suppression comments. It must be a valid
	// Go identifier.
	Name string
	// Doc is the one-paragraph description shown by `ipvet -help`.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report; the error return is for operational failures
	// (not findings).
	Run func(pass *Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries everything an analyzer may inspect about one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs this; analyzers
	// normally use Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(ident *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[ident]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[ident]
}

// Inspect walks every file of the pass in depth-first order, calling f for
// each node; f returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
