package graph

// AdversarialTree builds the Figure 2 digraph of the paper: a complete
// binary tree of the given depth with edges from each parent to its
// children, plus a directed edge from every leaf back to the root. Every
// root-to-leaf path closes a distinct cycle through the root.
//
// Vertex 0 is the root; vertices are numbered heap-style (children of v are
// 2v+1 and 2v+2). Depth 1 means a root with two leaf children.
//
// The cost function makes each leaf the cheapest vertex on its own cycle
// while the root is barely more expensive than a single leaf: the
// locally-minimum policy deletes every leaf (total cost ≈ leaves×leafCost)
// where deleting just the root (rootCost) breaks all cycles at once —
// the paper's example of locally-minimum being arbitrarily worse than the
// global optimum.
func AdversarialTree(depth int, leafCost, rootCost, innerCost int64) (*Digraph, CostFunc) {
	if depth < 1 {
		depth = 1
	}
	n := (1 << (depth + 1)) - 1
	firstLeaf := (1 << depth) - 1
	g := New(n)
	for v := 0; v < firstLeaf; v++ {
		g.AddEdge(v, 2*v+1)
		g.AddEdge(v, 2*v+2)
	}
	for v := firstLeaf; v < n; v++ {
		g.AddEdge(v, 0)
	}
	costs := make([]int64, n)
	for v := range costs {
		switch {
		case v == 0:
			costs[v] = rootCost
		case v >= firstLeaf:
			costs[v] = leafCost
		default:
			costs[v] = innerCost
		}
	}
	return g, func(v int) int64 { return costs[v] }
}

// NumLeaves returns the number of leaves of the Figure 2 tree of the given
// depth.
func NumLeaves(depth int) int {
	if depth < 1 {
		depth = 1
	}
	return 1 << depth
}
