package mux

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Transport multiplexes streams over one reliable net.Conn. The side
// that dialed the connection creates it with Client and opens streams;
// the accepting side creates it with Server and accepts them. Either
// side's failure — a framing violation, a dead conn, a GOAWAY — is
// terminal for the whole transport: every stream dies with the same
// typed error rather than desynchronizing.
type Transport struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool
	local  Settings // our receive limits (advertised to the peer)
	peer   Settings // the peer's receive limits (we must respect them)

	wmu  sync.Mutex
	wbuf []byte // HeaderLen + max payload we may send; reused per frame
	werr error

	mu       sync.Mutex
	streams  map[uint32]*Stream
	nextID   uint32 // next id this side assigns (client side; odd)
	maxSyn   uint32 // highest stream id SYNed by the initiating side
	err      error  // terminal transport error
	closed   bool
	accepts  chan *Stream
	slots    chan struct{} // open-side stream-limit semaphore
	done     chan struct{}
	ctrl     [maxControlPayload]byte // control payload scratch
	loopDone chan struct{}
}

// Client establishes protocol v2 on conn from the initiating side: it
// sends our SETTINGS, requires the peer's SETTINGS in reply, and starts
// the demultiplexing loop. A peer that answers with anything but a v2
// SETTINGS frame — a v1 updated, some unrelated service — fails with
// ErrVersionMismatch (or ErrBadMagic) without having consumed more than
// one frame's worth of reply.
func Client(conn net.Conn, st Settings) (*Transport, error) {
	return handshake(conn, conn, st, true)
}

// Server establishes protocol v2 on conn from the accepting side: it
// requires the client's opening SETTINGS, replies with ours, and starts
// the loop. r is the connection's read side, which may be a buffered
// reader that already consumed (peeked) bytes during protocol
// negotiation; pass conn itself when nothing peeked ahead.
func Server(conn net.Conn, r io.Reader, st Settings) (*Transport, error) {
	return handshake(conn, r, st, false)
}

func handshake(conn net.Conn, r io.Reader, st Settings, client bool) (*Transport, error) {
	st = st.withDefaults()
	t := &Transport{
		conn:     conn,
		br:       bufio.NewReaderSize(r, 64<<10),
		client:   client,
		local:    st,
		streams:  make(map[uint32]*Stream),
		nextID:   1,
		accepts:  make(chan *Stream, st.AcceptBacklog),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	// The handshake frames are small; the write buffer is resized to the
	// negotiated frame bound once the peer's SETTINGS arrive.
	t.wbuf = make([]byte, HeaderLen+maxControlPayload)
	if client {
		if err := t.writeFrame(FrameSettings, 0, encodeSettings(st)); err != nil {
			return nil, fmt.Errorf("mux: handshake send: %w", err)
		}
	}
	peer, err := t.readSettings()
	if err != nil {
		return nil, err
	}
	t.peer = peer
	if !client {
		if err := t.writeFrame(FrameSettings, 0, encodeSettings(st)); err != nil {
			return nil, fmt.Errorf("mux: handshake send: %w", err)
		}
	}
	max := t.peer.MaxFrame
	if t.local.MaxFrame > max {
		max = t.local.MaxFrame
	}
	t.wbuf = make([]byte, HeaderLen+max)
	// The open-side limit is the stricter of what we allow ourselves and
	// what the peer advertised it will accept.
	limit := st.MaxStreams
	if peer.MaxStreams < limit {
		limit = peer.MaxStreams
	}
	t.slots = make(chan struct{}, limit)
	go t.readLoop()
	return t, nil
}

// readSettings reads and validates the peer's opening SETTINGS frame.
func (t *Transport) readSettings() (Settings, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(t.br, hdr[:]); err != nil {
		// A peer that closed instead of answering the preface is not
		// speaking v2 — the common shape of dialing a v1-only server.
		return Settings{}, fmt.Errorf("mux: handshake read: %w: %w", ErrVersionMismatch, err)
	}
	h, err := parseHeader(hdr[:])
	if err != nil {
		return Settings{}, fmt.Errorf("mux: handshake: %w", err)
	}
	if h.typ != FrameSettings || h.stream != 0 {
		return Settings{}, fmt.Errorf("mux: handshake: %w: expected SETTINGS, got frame %#x on stream %d",
			ErrProtocol, h.typ, h.stream)
	}
	if int(h.length) > maxControlPayload {
		return Settings{}, fmt.Errorf("mux: handshake: %w: %d-byte SETTINGS", ErrFrameTooLarge, h.length)
	}
	payload := t.ctrl[:h.length]
	if _, err := io.ReadFull(t.br, payload); err != nil {
		return Settings{}, fmt.Errorf("mux: handshake read: %w", err)
	}
	c, err := codecFor(FrameSettings).Decode(payload)
	if err != nil {
		return Settings{}, fmt.Errorf("mux: handshake: %w", err)
	}
	return c.settings, nil
}

// PeerSettings returns the limits the peer advertised.
func (t *Transport) PeerSettings() Settings { return t.peer }

// LocalSettings returns the limits this side advertised.
func (t *Transport) LocalSettings() Settings { return t.local }

// Open starts a new stream, blocking while the connection is at its
// negotiated stream limit. It fails once the transport dies.
func (t *Transport) Open() (*Stream, error) {
	return t.OpenContext(context.Background())
}

// OpenContext is Open bounded by a context.
func (t *Transport) OpenContext(ctx context.Context) (*Stream, error) {
	select {
	case t.slots <- struct{}{}:
	case <-t.done:
		return nil, t.Err()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	// The SYN must hit the wire in stream-id order — the peer treats an
	// id at or below its SYN watermark as reuse and fails the connection
	// — so id assignment and the SYN write stay pinned together under
	// the writer lock.
	t.wmu.Lock()
	t.mu.Lock()
	if t.err != nil {
		t.mu.Unlock()
		t.wmu.Unlock()
		<-t.slots
		return nil, t.Err()
	}
	id := t.nextID
	t.nextID += 2
	s := newStream(id, t, t.peer.InitialWindow)
	t.streams[id] = s
	t.mu.Unlock()
	err := t.writeFrameLocked(FrameSyn, id, nil)
	t.wmu.Unlock()
	if err != nil {
		t.retire(s)
		return nil, err
	}
	return s, nil
}

// Accept returns the next peer-opened stream. It blocks until a stream
// arrives or the transport dies.
func (t *Transport) Accept() (*Stream, error) {
	select {
	case s := <-t.accepts:
		return s, nil
	case <-t.done:
		// Drain streams accepted before the failure so a graceful
		// shutdown still delivers them.
		select {
		case s := <-t.accepts:
			return s, nil
		default:
			return nil, t.Err()
		}
	}
}

// NumStreams returns the number of live streams.
func (t *Transport) NumStreams() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.streams)
}

// Err returns the transport's terminal error, or nil while it is
// healthy.
func (t *Transport) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		return nil
	}
	return t.err
}

// Close shuts the transport down: a best-effort GOAWAY tells the peer
// this is deliberate, the connection closes, and every stream dies with
// ErrClosed.
func (t *Transport) Close() error {
	t.mu.Lock()
	already := t.closed
	t.closed = true
	t.mu.Unlock()
	if !already {
		var code [4]byte
		_ = t.writeFrame(FrameGoAway, 0, code[:])
	}
	t.fail(ErrClosed)
	return nil
}

// fail records the transport's terminal error (first one wins), closes
// the connection, and kills every stream with it.
func (t *Transport) fail(err error) {
	t.mu.Lock()
	if t.err != nil {
		t.mu.Unlock()
		return
	}
	t.err = err
	t.closed = true
	victims := make([]*Stream, 0, len(t.streams))
	for _, s := range t.streams {
		victims = append(victims, s)
	}
	clear(t.streams)
	close(t.done)
	t.mu.Unlock()
	_ = t.conn.Close()
	t.wmu.Lock()
	if t.werr == nil {
		t.werr = err
	}
	t.wmu.Unlock()
	for _, s := range victims {
		if errors.Is(err, ErrClosed) {
			s.kill(ErrClosed)
		} else {
			s.kill(fmt.Errorf("%w: %w", ErrStreamReset, err))
		}
	}
}

// writeFrame marshals one frame into the transport's reused write buffer
// and writes it with a single conn.Write, so the steady-state write path
// performs no allocations and frames from concurrent streams never
// interleave mid-frame.
//
//ipvet:allocfree
func (t *Transport) writeFrame(typ byte, stream uint32, payload []byte) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.writeFrameLocked(typ, stream, payload)
}

// writeFrameLocked is writeFrame with t.wmu already held, for callers
// that must pin frame order across another operation (Open pins SYN
// emission to stream-id assignment).
//
//ipvet:allocfree
func (t *Transport) writeFrameLocked(typ byte, stream uint32, payload []byte) error {
	if t.werr != nil {
		return t.werr
	}
	putHeader(t.wbuf, typ, 0, stream, uint32(len(payload)))
	n := copy(t.wbuf[HeaderLen:], payload)
	if _, err := t.conn.Write(t.wbuf[:HeaderLen+n]); err != nil {
		t.werr = err //ipvet:ignore locksafe -- t.wmu is held by every caller (writeFrame, OpenContext)
		return err
	}
	return nil
}

// writeWindow sends a WINDOW credit grant.
//
//ipvet:allocfree
func (t *Transport) writeWindow(stream uint32, credit uint32) {
	var p [4]byte
	p[0] = byte(credit >> 24)
	p[1] = byte(credit >> 16)
	p[2] = byte(credit >> 8)
	p[3] = byte(credit)
	_ = t.writeFrame(FrameWindow, stream, p[:])
}

// writeRst sends a stream abort.
func (t *Transport) writeRst(stream uint32, code uint32) error {
	var p [4]byte
	p[0] = byte(code >> 24)
	p[1] = byte(code >> 16)
	p[2] = byte(code >> 8)
	p[3] = byte(code)
	return t.writeFrame(FrameRst, stream, p[:])
}

// retire removes a stream from the table, releasing its open slot and
// its buffer. Late frames addressed to a retired id are discarded by the
// read loop (the id is provably below the SYN watermark), so a FIN or
// straggling DATA crossing our Close on the wire is not an error.
func (t *Transport) retire(s *Stream) {
	t.mu.Lock()
	_, live := t.streams[s.id]
	delete(t.streams, s.id)
	t.mu.Unlock()
	if live {
		if t.client == (s.id%2 == 1) {
			// We opened it; free the limit slot.
			<-t.slots
		}
		s.mu.Lock()
		s.retired = true
		// Buffered data stays readable after retirement (like TCP after
		// FIN); the ring is released once the reader drains to EOF, or
		// immediately when nobody can read it anymore.
		if s.closed || s.rst != nil {
			s.rq.release()
		}
		s.mu.Unlock()
	}
}

// maybeRetire retires the stream once both directions have finished.
func (t *Transport) maybeRetire(s *Stream) {
	if s.bothClosed() {
		t.retire(s)
	}
}

// discard drains length bytes addressed to a retired stream.
func (t *Transport) discard(length int) error {
	for length > 0 {
		n := length
		if n > len(t.ctrl) {
			n = len(t.ctrl)
		}
		if _, err := io.ReadFull(t.br, t.ctrl[:n]); err != nil {
			return err
		}
		length -= n
	}
	return nil
}

// readLoop demultiplexes incoming frames until the connection dies or a
// protocol violation makes the transport unsalvageable. Every exit path
// funnels through fail, so streams always observe a typed terminal
// error.
func (t *Transport) readLoop() {
	defer close(t.loopDone)
	var hdr [HeaderLen]byte
	for {
		if _, err := io.ReadFull(t.br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("%w: peer closed the connection", ErrClosed)
			}
			t.fail(err)
			return
		}
		h, err := parseHeader(hdr[:])
		if err != nil {
			t.fail(err)
			return
		}
		if h.typ == FrameData {
			if err := t.handleData(h); err != nil {
				t.fail(err)
				return
			}
			continue
		}
		if err := t.handleControl(h); err != nil {
			t.fail(err)
			return
		}
	}
}

// lookup resolves a frame's stream id: the live stream, or nil for a
// retired id whose late frames are discarded, or a typed error for an id
// that was never opened — the hostile-stream-id case that must fail the
// connection rather than desynchronize it.
func (t *Transport) lookup(id uint32) (*Stream, error) {
	if id == 0 || id%2 == 0 {
		// Stream 0 is control-only and even ids are unassigned in v2
		// (only the initiating side opens streams).
		return nil, fmt.Errorf("%w: id %d", ErrUnknownStream, id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.streams[id]; ok {
		return s, nil
	}
	watermark := t.maxSyn
	if t.client {
		watermark = 0
		if t.nextID > 2 {
			watermark = t.nextID - 2
		}
	}
	if id <= watermark {
		return nil, nil // retired: late frame, discard
	}
	return nil, fmt.Errorf("%w: id %d was never opened", ErrUnknownStream, id)
}

// handleData routes one DATA frame into its stream's receive buffer.
func (t *Transport) handleData(h header) error {
	if int(h.length) > t.local.MaxFrame {
		return fmt.Errorf("%w: %d-byte DATA payload (negotiated limit %d)",
			ErrFrameTooLarge, h.length, t.local.MaxFrame)
	}
	s, err := t.lookup(h.stream)
	if err != nil {
		return err
	}
	if s == nil {
		return t.discard(int(h.length))
	}
	return s.deliver(t.br, int(h.length))
}

// handleControl decodes one control frame through the codec registry and
// applies it.
func (t *Transport) handleControl(h header) error {
	codec := codecFor(h.typ)
	if codec == nil {
		return fmt.Errorf("%w: %#x", ErrUnknownFrameType, h.typ)
	}
	if int(h.length) > codec.MaxLen() {
		return fmt.Errorf("%w: %d-byte payload on frame type %#x (limit %d)",
			ErrFrameTooLarge, h.length, h.typ, codec.MaxLen())
	}
	payload := t.ctrl[:h.length]
	if _, err := io.ReadFull(t.br, payload); err != nil {
		return err
	}
	c, err := codec.Decode(payload)
	if err != nil {
		return err
	}
	switch h.typ {
	case FrameSyn:
		return t.handleSyn(h.stream)
	case FrameFin:
		s, err := t.lookup(h.stream)
		if err != nil || s == nil {
			return err
		}
		s.finReceived()
	case FrameRst:
		s, err := t.lookup(h.stream)
		if err != nil || s == nil {
			return err
		}
		if c.code == CodeRefused {
			s.kill(ErrStreamRefused)
			t.retire(s)
		} else {
			s.resetReceived(fmt.Errorf("%w (code %d)", ErrStreamReset, c.code))
			t.maybeRetire(s)
		}
	case FrameWindow:
		s, err := t.lookup(h.stream)
		if err != nil || s == nil {
			return err
		}
		return s.addCredit(c.credit)
	case FrameSettings:
		// SETTINGS are exchanged exactly once, during the handshake.
		return fmt.Errorf("%w: SETTINGS after handshake", ErrProtocol)
	case FrameGoAway:
		if c.msg != "" {
			return fmt.Errorf("%w (code %d): %s", ErrGoAway, c.code, c.msg)
		}
		return fmt.Errorf("%w (code %d)", ErrGoAway, c.code)
	}
	return nil
}

// handleSyn admits (or refuses) a peer-opened stream.
func (t *Transport) handleSyn(id uint32) error {
	if t.client {
		return fmt.Errorf("%w: SYN from the accepting side", ErrProtocol)
	}
	if id == 0 || id%2 == 0 {
		return fmt.Errorf("%w: SYN with invalid id %d", ErrProtocol, id)
	}
	t.mu.Lock()
	if id <= t.maxSyn {
		t.mu.Unlock()
		return fmt.Errorf("%w: SYN for id %d at or below watermark %d", ErrStreamReuse, id, t.maxSyn)
	}
	t.maxSyn = id
	if len(t.streams) >= t.local.MaxStreams || len(t.accepts) == cap(t.accepts) {
		t.mu.Unlock()
		// Over the advertised limit: refuse just this stream. The id is
		// burned (it sits below the watermark now), so the peer's
		// follow-on frames are discarded, not fatal.
		return t.writeRst(id, CodeRefused)
	}
	s := newStream(id, t, t.peer.InitialWindow)
	t.streams[id] = s
	t.mu.Unlock()
	t.accepts <- s
	return nil
}
