package device

import "math/rand"

// FaultyStore decorates any Store with failure injection, so power-cut and
// flaky-flash scenarios can be tested against file-backed stores as well
// as the in-memory Flash (which has its own simple write-count trigger).
//
// Failures are counted across reads and writes together when configured
// with FailAfterOps; independent random failure rates can also be set.
type FaultyStore struct {
	inner Store

	opsUntilFailure int64 // -1 disarmed
	failNextKind    error

	rng           *rand.Rand
	writeFailProb float64
}

// Verify interface compliance.
var _ Store = (*FaultyStore)(nil)

// NewFaultyStore wraps inner with disarmed failure injection.
func NewFaultyStore(inner Store) *FaultyStore {
	return &FaultyStore{inner: inner, opsUntilFailure: -1, failNextKind: ErrPowerCut}
}

// FailAfterOps arms a deterministic failure: the (n+1)-th operation (read
// or write) from now fails with ErrPowerCut. Negative n disarms.
func (f *FaultyStore) FailAfterOps(n int64) { f.opsUntilFailure = n }

// WithRandomWriteFailures makes each write fail with probability p,
// deterministically from seed.
func (f *FaultyStore) WithRandomWriteFailures(p float64, seed int64) {
	f.writeFailProb = p
	f.rng = rand.New(rand.NewSource(seed))
}

// Capacity implements Store.
func (f *FaultyStore) Capacity() int64 { return f.inner.Capacity() }

// ReadAt implements Store.
func (f *FaultyStore) ReadAt(p []byte, off int64) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.ReadAt(p, off)
}

// WriteAt implements Store.
func (f *FaultyStore) WriteAt(p []byte, off int64) error {
	if err := f.tick(); err != nil {
		return err
	}
	if f.rng != nil && f.rng.Float64() < f.writeFailProb {
		return ErrPowerCut
	}
	return f.inner.WriteAt(p, off)
}

// tick advances the deterministic failure counter.
func (f *FaultyStore) tick() error {
	if f.opsUntilFailure < 0 {
		return nil
	}
	if f.opsUntilFailure == 0 {
		return f.failNextKind
	}
	f.opsUntilFailure--
	return nil
}
