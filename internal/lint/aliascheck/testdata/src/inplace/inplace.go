// Test package for the aliascheck analyzer. Named inplace so it falls in
// the analyzer's package scope; the types mirror the conversion API shape
// (command slices, option slices, batch jobs).
package inplace

type Cmd struct{ From, To, Length int64 }

type pool struct {
	cmds []Cmd
}

// Retaining the caller's slice in a field aliases it past the call.
func (p *pool) Retain(cmds []Cmd) {
	p.cmds = cmds // want `stores caller-provided slice`
}

// Retaining a subslice is the same bug.
func (p *pool) RetainTail(cmds []Cmd) {
	p.cmds = cmds[1:] // want `stores caller-provided slice`
}

// Storing a fresh copy is the sanctioned idiom.
func (p *pool) RetainCopy(cmds []Cmd) {
	p.cmds = append([]Cmd(nil), cmds...)
}

// Writing through the parameter mutates caller memory.
func Mutate(cmds []Cmd) {
	cmds[0] = Cmd{} // want `mutates caller-provided slice`
}

// After a defensive copy the writes hit private memory.
func MutateCopy(cmds []Cmd) {
	cmds = append([]Cmd(nil), cmds...)
	cmds[0] = Cmd{}
}

// copy with the parameter as destination is also a mutation.
func Fill(dst []byte, b byte) {
	copy(dst, []byte{b}) // want `mutates caller-provided slice`
}

// A worker goroutine capturing the parameter races the caller.
func Spawn(cmds []Cmd, done chan struct{}) {
	go func() { // want `captures caller-provided slice`
		_ = cmds[0]
		close(done)
	}()
}

func SpawnCopy(cmds []Cmd, done chan struct{}) {
	cmds = append([]Cmd(nil), cmds...)
	go func() {
		_ = cmds[0]
		close(done)
	}()
}

type job struct{ cmds []Cmd }

// Sending the slice (inside a composite literal) hands it to another
// goroutine.
func Send(ch chan job, cmds []Cmd) {
	ch <- job{cmds: cmds} // want `sends caller-provided slice`
}

func SendCopy(ch chan job, cmds []Cmd) {
	ch <- job{cmds: append([]Cmd(nil), cmds...)}
}

// Unexported helpers are internal plumbing, not the API contract.
func retain(p *pool, cmds []Cmd) {
	p.cmds = cmds
}

// Reading the parameter is always fine.
func Sum(cmds []Cmd) int64 {
	var total int64
	for _, c := range cmds {
		total += c.Length
	}
	return total
}
