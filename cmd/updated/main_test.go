package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestUpdatedUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"missing1.img", "missing2.img"},
		{"-listen", "notanaddress:::", "missing.img"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestUpdatedRejectsBadListen(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "v1.img")
	if err := os.WriteFile(img, []byte("image-contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-listen", "256.256.256.256:99999", img}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
