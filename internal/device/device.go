package device

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
)

// DefaultWorkBufSize is the default size of the device's only working
// buffer. It bounds the device's memory use regardless of file or delta
// size.
const DefaultWorkBufSize = 4096

// Errors reported by the device patcher.
var (
	ErrNotInPlace     = errors.New("device: delta format cannot be applied in place")
	ErrWrongVersion   = errors.New("device: delta reference length disagrees with installed image")
	ErrImageTooLarge  = errors.New("device: new version exceeds flash capacity")
	ErrResumeMismatch = errors.New("device: resumed delta differs from the interrupted one")
	ErrScratchBudget  = errors.New("device: delta needs more scratch than the flash can spare")
)

// progress is the simulated NVRAM word recording how far an interrupted
// update got: the number of fully applied commands and the bytes completed
// of the in-flight command. Sixteen bytes of durable state is all a real
// device needs to make in-place updates power-cut safe. The full flag
// marks a full-image install (the degradation path) instead of a delta:
// there cmd is unused and done counts image bytes written.
type progress struct {
	active     bool
	full       bool
	cmd        int64
	done       int64
	refLen     int64
	versionLen int64
	numCmds    int64
	refCRC     uint32
}

// Store is the storage a device patches in place: the Flash simulation or
// a real file via FileStore. Reads beyond written data return zeros, like
// an erased part.
type Store interface {
	// ReadAt fills p from offset off.
	ReadAt(p []byte, off int64) error
	// WriteAt stores p at offset off.
	WriteAt(p []byte, off int64) error
	// Capacity is the total storage size in bytes.
	Capacity() int64
}

// Device is a limited-memory network device: a storage part, a bounded
// working buffer, and a tiny progress record. It applies in-place deltas
// streamed from the network without ever allocating version-sized scratch.
type Device struct {
	store    Store
	imageLen int64
	work     []byte
	nv       progress
	nvWrites int64
}

// New returns a device whose storage currently holds an image of imageLen
// bytes. workBufSize bounds the working buffer (minimum 16 bytes).
func New(store Store, imageLen int64, workBufSize int) *Device {
	if workBufSize < 16 {
		workBufSize = 16
	}
	return &Device{store: store, imageLen: imageLen, work: make([]byte, workBufSize)}
}

// ImageLen returns the length of the currently installed image.
func (d *Device) ImageLen() int64 { return d.imageLen }

// FlashCapacity returns the total flash size.
func (d *Device) FlashCapacity() int64 { return d.store.Capacity() }

// Image returns a copy of the installed image.
func (d *Device) Image() []byte {
	out := make([]byte, d.imageLen)
	for at := int64(0); at < d.imageLen; {
		n := int64(len(d.work))
		if d.imageLen-at < n {
			n = d.imageLen - at
		}
		if err := d.store.ReadAt(out[at:at+n], at); err != nil {
			return out[:at]
		}
		at += n
	}
	return out
}

// Updating reports whether an interrupted update is pending resume.
func (d *Device) Updating() bool { return d.nv.active }

// NVWrites returns how many times the progress record was persisted —
// a proxy for NVRAM wear.
func (d *Device) NVWrites() int64 { return d.nvWrites }

// persist simulates writing the progress record to NVRAM.
func (d *Device) persist() { d.nvWrites++ }

// ImageCRC computes the CRC32 of the installed image using the bounded
// working buffer; the update protocol uses it to identify versions.
func (d *Device) ImageCRC() (uint32, error) {
	h := crc32.NewIEEE()
	for at := int64(0); at < d.imageLen; {
		n := int64(len(d.work))
		if d.imageLen-at < n {
			n = d.imageLen - at
		}
		if err := d.store.ReadAt(d.work[:n], at); err != nil {
			return 0, err
		}
		h.Write(d.work[:n])
		at += n
	}
	return h.Sum32(), nil
}

// Pending describes an interrupted update. Full marks an interrupted
// full-image install; RefCRC and RefLen are meaningless there (the source
// image is already partially overwritten).
type Pending struct {
	RefCRC     uint32
	RefLen     int64
	VersionLen int64
	Full       bool
}

// PendingUpdate returns details of the interrupted update, if any, so an
// update client can ask the server to re-stream the same delta (or the
// same full image).
func (d *Device) PendingUpdate() (Pending, bool) {
	if !d.nv.active {
		return Pending{}, false
	}
	return Pending{
		RefCRC:     d.nv.refCRC,
		RefLen:     d.nv.refLen,
		VersionLen: d.nv.versionLen,
		Full:       d.nv.full,
	}, true
}

// AbandonUpdate discards any pending update state. The flash may hold a
// partially applied update afterwards, so the caller must follow up with a
// transfer that does not depend on the installed image — InstallFull is
// the intended successor.
func (d *Device) AbandonUpdate() {
	if !d.nv.active {
		return
	}
	d.nv = progress{}
	d.persist()
}

// Apply streams an in-place reconstructible delta from r and applies it to
// the flash. If a previous Apply was interrupted (e.g. by ErrPowerCut), the
// same delta may be streamed again and application resumes where it
// stopped; commands already applied are skipped without touching the flash.
//
// Deltas in the scratch format use a dedicated region at the top of the
// flash as durable scratch (so resume survives power cuts); the flash must
// have room for max(image, version) plus the declared scratch bytes.
//
// On success the installed image is the new version. On error the flash
// holds a partial update and the progress record allows resumption; any
// other delta is rejected until the interrupted one completes.
func (d *Device) Apply(r io.Reader) error {
	dec, err := codec.NewDecoder(r)
	if err != nil {
		return err
	}
	hdr := dec.Header()
	if !hdr.Format.InPlaceCapable() {
		return fmt.Errorf("%w: %v", ErrNotInPlace, hdr.Format)
	}
	if hdr.VersionLen > d.store.Capacity() {
		return fmt.Errorf("%w: need %d bytes, capacity %d", ErrImageTooLarge, hdr.VersionLen, d.store.Capacity())
	}
	// The durable scratch area sits above both file images.
	imageArea := hdr.VersionLen
	if hdr.RefLen > imageArea {
		imageArea = hdr.RefLen
	}
	if imageArea+hdr.ScratchLen > d.store.Capacity() {
		return fmt.Errorf("%w: need %d image + %d scratch, capacity %d",
			ErrScratchBudget, imageArea, hdr.ScratchLen, d.store.Capacity())
	}
	scratchBase := d.store.Capacity() - hdr.ScratchLen
	if d.nv.active {
		if d.nv.full {
			// A full-image install is pending; its partial writes make the
			// installed image unusable as a delta reference.
			return ErrResumeMismatch
		}
		if hdr.RefLen != d.nv.refLen || hdr.VersionLen != d.nv.versionLen || int64(hdr.NumCommands) != d.nv.numCmds {
			return ErrResumeMismatch
		}
	} else {
		if hdr.RefLen != d.imageLen {
			return fmt.Errorf("%w: image %d bytes, delta expects %d", ErrWrongVersion, d.imageLen, hdr.RefLen)
		}
		refCRC, err := d.ImageCRC()
		if err != nil {
			return err
		}
		d.nv = progress{
			active:     true,
			refLen:     hdr.RefLen,
			versionLen: hdr.VersionLen,
			numCmds:    int64(hdr.NumCommands),
			refCRC:     refCRC,
		}
		d.persist()
	}

	// Scratch cursors are recomputed deterministically while streaming, so
	// they need no NVRAM of their own: skipped commands advance them too.
	var stashAt, unstashAt int64
	for idx := int64(0); ; idx++ {
		c, payload, err := dec.NextStreaming()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		// Resolve scratch-area addresses before the skip decision.
		var scratchOff int64
		switch c.Op {
		case delta.OpStash:
			scratchOff = scratchBase + stashAt
			stashAt += c.Length
		case delta.OpUnstash:
			scratchOff = scratchBase + unstashAt
			unstashAt += c.Length
		}
		if idx < d.nv.cmd {
			// Already applied before the interruption; drain and skip.
			if payload != nil {
				if _, err := io.Copy(io.Discard, payload); err != nil {
					return err
				}
			}
			continue
		}
		resume := int64(0)
		if idx == d.nv.cmd {
			resume = d.nv.done
		}
		if err := d.applyCommand(c, payload, resume, scratchOff); err != nil {
			return err
		}
		d.nv.cmd = idx + 1
		d.nv.done = 0
		d.persist()
	}
	d.imageLen = d.nv.versionLen
	d.nv = progress{}
	d.persist()
	return nil
}

// applyCommand executes one command chunk by chunk, starting from
// `resume` completed bytes, persisting progress after every chunk. For
// stash/unstash commands, scratchOff addresses the durable scratch region.
func (d *Device) applyCommand(c delta.Command, payload io.Reader, resume, scratchOff int64) error {
	switch c.Op {
	case delta.OpCopy:
		return d.applyCopy(c, resume)
	case delta.OpAdd:
		return d.applyAdd(c, payload, resume)
	case delta.OpStash:
		// Copy buffer bytes into the scratch region; the regions are
		// disjoint, so a plain left-to-right chunked copy is safe.
		return d.applyCopy(delta.NewCopy(c.From, scratchOff, c.Length), resume)
	case delta.OpUnstash:
		// Copy scratch bytes back into the version area.
		return d.applyCopy(delta.NewCopy(scratchOff, c.To, c.Length), resume)
	default:
		return fmt.Errorf("device: %v", delta.ErrBadOp)
	}
}

// applyCopy performs a directional chunked copy (§4.1 of the paper):
// left-to-right when from >= to, right-to-left otherwise, so a copy whose
// read and write intervals overlap never reads a byte it has already
// overwritten — even across power cuts, since progress is persisted per
// chunk and chunks are re-run only if their write never happened.
func (d *Device) applyCopy(c delta.Command, done int64) error {
	step := int64(len(d.work))
	for done < c.Length {
		n := step
		if c.Length-done < n {
			n = c.Length - done
		}
		var off int64
		if c.From >= c.To {
			off = done // left-to-right
		} else {
			off = c.Length - done - n // right-to-left
		}
		if err := d.store.ReadAt(d.work[:n], c.From+off); err != nil {
			return err
		}
		if err := d.store.WriteAt(d.work[:n], c.To+off); err != nil {
			return err
		}
		done += n
		d.nv.done = done
		d.persist()
	}
	return nil
}

// InstallFull streams a complete image of length bytes from r into the
// flash, replacing whatever is installed — the degradation path when delta
// sessions keep failing or the server does not know the device's version.
//
// Like Apply, the install is resumable: progress is persisted per chunk,
// and re-streaming the same image continues where the last attempt died
// (the already-written prefix is drained from r without rewriting it). A
// pending delta update, or a pending full install of a different length,
// is abandoned and the install restarts from byte zero.
func (d *Device) InstallFull(r io.Reader, length int64) error {
	if length > d.store.Capacity() {
		return fmt.Errorf("%w: need %d bytes, capacity %d", ErrImageTooLarge, length, d.store.Capacity())
	}
	if !d.nv.active || !d.nv.full || d.nv.versionLen != length {
		d.nv = progress{active: true, full: true, versionLen: length}
		d.persist()
	}
	done := d.nv.done
	if done > 0 {
		if _, err := io.CopyN(io.Discard, r, done); err != nil {
			return err
		}
	}
	for done < length {
		n := int64(len(d.work))
		if length-done < n {
			n = length - done
		}
		if _, err := io.ReadFull(r, d.work[:n]); err != nil {
			return err
		}
		if err := d.store.WriteAt(d.work[:n], done); err != nil {
			return err
		}
		done += n
		d.nv.done = done
		d.persist()
	}
	d.imageLen = length
	d.nv = progress{}
	d.persist()
	return nil
}

// applyAdd streams the payload into flash. On resume, the bytes already
// written are drained from the payload without rewriting them.
func (d *Device) applyAdd(c delta.Command, payload io.Reader, done int64) error {
	if done > 0 {
		if _, err := io.CopyN(io.Discard, payload, done); err != nil {
			return err
		}
	}
	for done < c.Length {
		n := int64(len(d.work))
		if c.Length-done < n {
			n = c.Length - done
		}
		if _, err := io.ReadFull(payload, d.work[:n]); err != nil {
			return err
		}
		if err := d.store.WriteAt(d.work[:n], c.To+done); err != nil {
			return err
		}
		done += n
		d.nv.done = done
		d.persist()
	}
	return nil
}
