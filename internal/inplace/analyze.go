package inplace

import (
	"fmt"
	"slices"

	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
	"ipdelta/internal/graph"
)

// Analysis describes the in-place structure of a delta without converting
// it: the CRWI digraph, how entangled it is, and what conversion would
// cost. It needs only the delta (not the reference file), so inspection
// tools can run it anywhere.
type Analysis struct {
	// Copies and Adds partition the commands.
	Copies int
	Adds   int
	// Edges is the CRWI digraph's edge count (≤ VersionLen by Lemma 1).
	Edges int
	// CyclicComponents counts strongly connected components with at least
	// two vertices — the irreducible knots that force conversions.
	CyclicComponents int
	// VerticesInCycles counts copies entangled in those components.
	VerticesInCycles int
	// LargestComponent is the size of the biggest cyclic component.
	LargestComponent int
	// AlreadySafe reports whether the delta, in its current order,
	// satisfies Equation 2 (safe to apply in place as-is).
	AlreadySafe bool
	// ReorderSufficient reports whether a permutation alone (no copy→add
	// conversions) can make the delta in-place safe, i.e. the CRWI digraph
	// is acyclic.
	ReorderSufficient bool
	// MinConversionBytes lower-bounds the literal bytes conversion must
	// move into the delta: for each cyclic component, the smallest copy in
	// it (every feedback vertex set takes at least one vertex per cyclic
	// component).
	MinConversionBytes int64
	// LocallyMinimumBytes is what the locally-minimum policy would
	// actually convert.
	LocallyMinimumBytes int64
}

// Analyze inspects d and reports its in-place structure.
func Analyze(d *delta.Delta) (*Analysis, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	var copies []delta.Command
	adds := 0
	for _, c := range d.Commands {
		if c.Op == delta.OpCopy {
			copies = append(copies, c)
		} else {
			adds++
		}
	}
	slices.SortFunc(copies, commandsByWriteOffset)
	var cs crwiScratch
	g := cs.build(copies)
	cost := func(v int) int64 {
		c := copies[v]
		return c.Length - int64(codec.UvarintLen(uint64(c.From)))
	}

	a := &Analysis{
		Copies:      len(copies),
		Adds:        adds,
		Edges:       g.NumEdges(),
		AlreadySafe: d.CheckInPlace() == nil,
	}
	for _, comp := range graph.StronglyConnectedComponents(g) {
		if len(comp) < 2 {
			continue
		}
		a.CyclicComponents++
		a.VerticesInCycles += len(comp)
		if len(comp) > a.LargestComponent {
			a.LargestComponent = len(comp)
		}
		minLen := copies[comp[0]].Length
		for _, v := range comp[1:] {
			if copies[v].Length < minLen {
				minLen = copies[v].Length
			}
		}
		a.MinConversionBytes += minLen
	}
	a.ReorderSufficient = a.CyclicComponents == 0
	res := graph.TopoSort(g, cost, graph.LocallyMinimum{})
	for _, v := range res.Removed {
		a.LocallyMinimumBytes += copies[v].Length
	}
	return a, nil
}
