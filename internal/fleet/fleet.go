// Package fleet simulates distributing a software release to a fleet of
// limited-storage network devices over a shared low-bandwidth channel —
// the deployment scenario that motivates the paper. It compares three
// distribution modes:
//
//   - Full: every device downloads the whole new image. Works whenever the
//     image fits the flash, but ships the most bytes.
//   - DeltaScratch: classic delta reconstruction, requiring the old and
//     new version to be resident simultaneously (capacity ≥ old+new).
//     Devices without that headroom must fall back to a full download.
//   - DeltaInPlace: the paper's contribution — delta-sized traffic with
//     only max(old, new) bytes of storage, so every device that could take
//     a full image can take the delta.
//
// The shared channel serializes transfers, so fleet makespan is total
// bytes divided by the link rate.
package fleet

import (
	"bytes"
	"fmt"
	"time"

	"ipdelta/internal/codec"
	"ipdelta/internal/device"
	"ipdelta/internal/diff"
	"ipdelta/internal/inplace"
	"ipdelta/internal/netupdate"
)

// Mode selects the distribution strategy.
type Mode int

const (
	// ModeFull ships complete images.
	ModeFull Mode = iota + 1
	// ModeDeltaScratch ships deltas applied with two-copy scratch space.
	ModeDeltaScratch
	// ModeDeltaInPlace ships in-place reconstructible deltas.
	ModeDeltaInPlace
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full-image"
	case ModeDeltaScratch:
		return "delta-scratch"
	case ModeDeltaInPlace:
		return "delta-in-place"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DeviceSpec places one device in the fleet.
type DeviceSpec struct {
	// Release indexes the version the device currently runs.
	Release int
	// CapacitySlack is extra flash beyond the larger of (installed image,
	// new image), as a fraction. 0.05 means 5% headroom — far less than
	// the 100%+ a two-copy reconstruction needs.
	CapacitySlack float64
}

// Config describes a fleet simulation.
type Config struct {
	// Releases is the version history, oldest first; the last entry is
	// distributed.
	Releases [][]byte
	// Devices is the fleet.
	Devices []DeviceSpec
	// LinkBitsPerSecond is the shared channel rate.
	LinkBitsPerSecond int64
}

// Outcome summarizes one simulated rollout.
type Outcome struct {
	Mode Mode
	// Updated devices finished on the new release.
	Updated int
	// Fallbacks counts devices that could not use the mode's preferred
	// mechanism and took a full image instead (only in DeltaScratch mode).
	Fallbacks int
	// BytesOnWire totals payload bytes over the shared channel.
	BytesOnWire int64
	// Makespan is the serialized transfer time of the rollout.
	Makespan time.Duration
}

// Simulate runs a rollout in the given mode. Every device ends on the new
// release (falling back to a full image when the mode's mechanism does not
// fit); the cost of the mode shows up in BytesOnWire and Makespan.
func Simulate(cfg Config, mode Mode) (*Outcome, error) {
	if len(cfg.Releases) == 0 {
		return nil, fmt.Errorf("fleet: no releases")
	}
	newImage := cfg.Releases[len(cfg.Releases)-1]
	newLen := int64(len(newImage))
	out := &Outcome{Mode: mode}

	// Per-source-release delta caches.
	scratchDeltas := map[int]int64{}  // encoded size only; applied via Apply
	inplaceDeltas := map[int][]byte{} // encoded compact in-place deltas
	algo := diff.NewLinear()

	for di, spec := range cfg.Devices {
		if spec.Release < 0 || spec.Release >= len(cfg.Releases) {
			return nil, fmt.Errorf("fleet: device %d runs unknown release %d", di, spec.Release)
		}
		oldImage := cfg.Releases[spec.Release]
		oldLen := int64(len(oldImage))
		capacity := maxI64(oldLen, newLen)
		capacity += int64(float64(capacity) * spec.CapacitySlack)

		switch mode {
		case ModeFull:
			out.BytesOnWire += newLen
		case ModeDeltaScratch:
			if capacity >= oldLen+newLen {
				n, ok := scratchDeltas[spec.Release]
				if !ok {
					d, err := algo.Diff(oldImage, newImage)
					if err != nil {
						return nil, err
					}
					n, err = codec.EncodedSize(d, codec.FormatOrdered)
					if err != nil {
						return nil, err
					}
					scratchDeltas[spec.Release] = n
				}
				out.BytesOnWire += n
			} else {
				// Not enough room for two copies: full image fallback.
				out.Fallbacks++
				out.BytesOnWire += newLen
			}
		case ModeDeltaInPlace:
			enc, ok := inplaceDeltas[spec.Release]
			if !ok {
				d, err := algo.Diff(oldImage, newImage)
				if err != nil {
					return nil, err
				}
				ip, _, err := inplace.Convert(d, oldImage)
				if err != nil {
					return nil, err
				}
				var buf bytes.Buffer
				if _, err := codec.Encode(&buf, ip, codec.FormatCompact); err != nil {
					return nil, err
				}
				enc = buf.Bytes()
				inplaceDeltas[spec.Release] = enc
			}
			// Actually drive the device substrate: flash + streaming apply.
			flash, err := device.NewFlash(oldImage, capacity)
			if err != nil {
				return nil, err
			}
			dev := device.New(flash, oldLen, device.DefaultWorkBufSize)
			if err := dev.Apply(bytes.NewReader(enc)); err != nil {
				return nil, fmt.Errorf("fleet: device %d apply: %w", di, err)
			}
			if !bytes.Equal(dev.Image(), newImage) {
				return nil, fmt.Errorf("fleet: device %d ended on the wrong image", di)
			}
			out.BytesOnWire += int64(len(enc))
		default:
			return nil, fmt.Errorf("fleet: unknown mode %v", mode)
		}
		out.Updated++
	}
	out.Makespan = netupdate.TransferTime(out.BytesOnWire, cfg.LinkBitsPerSecond)
	return out, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
