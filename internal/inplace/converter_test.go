package inplace

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"ipdelta/internal/delta"
	"ipdelta/internal/graph"
	"ipdelta/internal/obs"
)

// randomDelta builds a valid delta over a reference of the given length:
// the version is partitioned into random-length chunks, each becoming a
// copy from a random reference offset or an add. Reads may overlap each
// other and any write, so CRWI digraphs of every shape (including cycles)
// arise.
func randomDelta(rng *rand.Rand, refLen int64) *delta.Delta {
	d := &delta.Delta{RefLen: refLen, VersionLen: refLen}
	var at int64
	for at < refLen {
		l := int64(1 + rng.Intn(64))
		if l > refLen-at {
			l = refLen - at
		}
		if rng.Intn(4) == 0 {
			data := make([]byte, l)
			rng.Read(data)
			d.Commands = append(d.Commands, delta.NewAdd(at, data))
		} else {
			from := rng.Int63n(refLen - l + 1)
			d.Commands = append(d.Commands, delta.NewCopy(from, at, l))
		}
		at += l
	}
	// Shuffle so input order exercises the write-offset sort.
	rng.Shuffle(len(d.Commands), func(i, j int) {
		d.Commands[i], d.Commands[j] = d.Commands[j], d.Commands[i]
	})
	return d
}

// sortedCopies extracts d's copy commands in write-offset order, the input
// both CRWI builders require.
func sortedCopies(t *testing.T, d *delta.Delta) []delta.Command {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid delta: %v", err)
	}
	var copies []delta.Command
	for _, c := range d.Commands {
		if c.Op == delta.OpCopy {
			copies = append(copies, c)
		}
	}
	slices.SortFunc(copies, commandsByWriteOffset)
	return copies
}

// requireSameGraph asserts two graphs have identical vertex counts and
// per-vertex successor lists, in order.
func requireSameGraph(t *testing.T, name string, want, got graph.Graph) {
	t.Helper()
	if want.NumVertices() != got.NumVertices() {
		t.Fatalf("%s: vertices: reference %d, sweep-line %d", name, want.NumVertices(), got.NumVertices())
	}
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: edges: reference %d, sweep-line %d", name, want.NumEdges(), got.NumEdges())
	}
	for u := 0; u < want.NumVertices(); u++ {
		if !slices.Equal(want.Succ(u), got.Succ(u)) {
			t.Fatalf("%s: successors of %d: reference %v, sweep-line %v",
				name, u, want.Succ(u), got.Succ(u))
		}
	}
}

// TestSweepLineCRWIMatchesReference proves the sweep-line CSR builder
// produces the exact edge set (including per-vertex successor order) of
// the binary-search reference builder, on seeded random deltas and on the
// paper's Figure 2 and Figure 3 constructions.
func TestSweepLineCRWIMatchesReference(t *testing.T) {
	var cs crwiScratch // shared across cases: reuse must not leak state
	check := func(name string, d *delta.Delta) {
		copies := sortedCopies(t, d)
		requireSameGraph(t, name, buildCRWI(copies), cs.build(copies))
	}

	rng := rand.New(rand.NewSource(1998))
	for i := 0; i < 200; i++ {
		refLen := int64(1 + rng.Intn(2000))
		check(fmt.Sprintf("random-%d", i), randomDelta(rng, refLen))
	}
	for b := 2; b <= 17; b += 5 {
		check(fmt.Sprintf("quadratic-%d", b), QuadraticDelta(b))
	}
	for depth := 1; depth <= 6; depth++ {
		check(fmt.Sprintf("adversarial-%d", depth), AdversarialDelta(depth, 16))
	}
}

// TestSweepLineEmpty covers the degenerate no-copies build.
func TestSweepLineEmpty(t *testing.T) {
	var cs crwiScratch
	g := cs.build(nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty build: got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}

// TestConverterReuseMatchesConvert interleaves conversions of many
// different deltas through one Converter and checks every pooled result
// against the free Convert function, immediately while the result is
// valid.
func TestConverterReuseMatchesConvert(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cv := NewConverter()
	for i := 0; i < 60; i++ {
		refLen := int64(1 + rng.Intn(1500))
		d := randomDelta(rng, refLen)
		ref := make([]byte, refLen)
		rng.Read(ref)

		got, gotStats, err := cv.Convert(d, ref)
		if err != nil {
			t.Fatalf("case %d: pooled convert: %v", i, err)
		}
		want, wantStats, err := Convert(d, ref)
		if err != nil {
			t.Fatalf("case %d: free convert: %v", i, err)
		}
		if len(got.Commands) != len(want.Commands) {
			t.Fatalf("case %d: %d commands, want %d", i, len(got.Commands), len(want.Commands))
		}
		for k := range got.Commands {
			if !got.Commands[k].Equal(want.Commands[k]) {
				t.Fatalf("case %d: command %d: got %v, want %v", i, k, got.Commands[k], want.Commands[k])
			}
		}
		if *gotStats != *wantStats {
			t.Fatalf("case %d: stats %+v, want %+v", i, *gotStats, *wantStats)
		}
		if err := got.CheckInPlace(); err != nil {
			t.Fatalf("case %d: pooled output not in-place safe: %v", i, err)
		}
		wantOut, err := d.Apply(ref)
		if err != nil {
			t.Fatalf("case %d: apply input: %v", i, err)
		}
		gotOut, err := got.Apply(ref)
		if err != nil {
			t.Fatalf("case %d: apply converted: %v", i, err)
		}
		if !bytes.Equal(wantOut, gotOut) {
			t.Fatalf("case %d: converted delta materializes different bytes", i)
		}
	}
}

// TestConverterReuseWithOptions checks reuse under the non-default
// strategies and the scratch budget, where the converter exercises its
// mask, stash, and unstash scratch.
func TestConverterReuseWithOptions(t *testing.T) {
	for _, opts := range [][]Option{
		{WithStrategy(StrategySCCGreedy)},
		{WithPolicy(graph.ConstantTime{})},
		{WithScratchBudget(64)},
	} {
		cv := NewConverter(opts...)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 25; i++ {
			refLen := int64(1 + rng.Intn(800))
			d := randomDelta(rng, refLen)
			ref := make([]byte, refLen)
			rng.Read(ref)
			got, _, err := cv.Convert(d, ref)
			if err != nil {
				t.Fatalf("case %d: pooled convert: %v", i, err)
			}
			want, _, err := Convert(d, ref, opts...)
			if err != nil {
				t.Fatalf("case %d: free convert: %v", i, err)
			}
			if len(got.Commands) != len(want.Commands) {
				t.Fatalf("case %d: %d commands, want %d", i, len(got.Commands), len(want.Commands))
			}
			for k := range got.Commands {
				if !got.Commands[k].Equal(want.Commands[k]) {
					t.Fatalf("case %d: command %d: got %v, want %v", i, k, got.Commands[k], want.Commands[k])
				}
			}
		}
	}
}

// TestConvertNewDetaches proves ConvertNew results survive later calls on
// the same converter, while Convert results are converter-owned.
func TestConvertNewDetaches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cv := NewConverter()

	refLen := int64(1200)
	d := randomDelta(rng, refLen)
	ref := make([]byte, refLen)
	rng.Read(ref)

	kept, _, err := cv.ConvertNew(d, ref)
	if err != nil {
		t.Fatalf("ConvertNew: %v", err)
	}
	snapshot := kept.Clone()

	// Churn the converter with other work.
	for i := 0; i < 10; i++ {
		d2 := randomDelta(rng, 700)
		ref2 := make([]byte, 700)
		rng.Read(ref2)
		if _, _, err := cv.Convert(d2, ref2); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
	}

	if len(kept.Commands) != len(snapshot.Commands) {
		t.Fatalf("detached result changed length: %d, was %d", len(kept.Commands), len(snapshot.Commands))
	}
	for k := range kept.Commands {
		if !kept.Commands[k].Equal(snapshot.Commands[k]) {
			t.Fatalf("detached result mutated at command %d: %v, was %v",
				k, kept.Commands[k], snapshot.Commands[k])
		}
	}
}

// TestConverterConvertAllocs is the steady-state allocation gate for the
// pooled conversion path: after warm-up, (*Converter).Convert must perform
// at most 2 allocations per call (it is expected to reach 0; the slack
// tolerates runtime-internal noise, not converter regressions).
func TestConverterConvertAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	refLen := int64(4096)
	d := randomDelta(rng, refLen)
	ref := make([]byte, refLen)
	rng.Read(ref)

	cv := NewConverter()
	if _, _, err := cv.Convert(d, ref); err != nil { // warm the scratch
		t.Fatalf("warm-up convert: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := cv.Convert(d, ref); err != nil {
			t.Fatalf("convert: %v", err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state (*Converter).Convert allocates %.1f times per call, want <= 2", allocs)
	}
}

// TestConverterConvertAllocsWithObserver holds an observed converter to
// the same gate as an unobserved one: metric handles are pre-resolved and
// spans are value types, so a registered registry must add zero
// allocations to the steady-state convert path.
func TestConverterConvertAllocsWithObserver(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	refLen := int64(4096)
	d := randomDelta(rng, refLen)
	ref := make([]byte, refLen)
	rng.Read(ref)

	reg := obs.NewRegistry()
	cv := NewConverter(WithObserver(reg))
	if _, _, err := cv.Convert(d, ref); err != nil { // warm the scratch
		t.Fatalf("warm-up convert: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := cv.Convert(d, ref); err != nil {
			t.Fatalf("convert: %v", err)
		}
	})
	if allocs > 2 {
		t.Fatalf("observed (*Converter).Convert allocates %.1f times per call, want <= 2", allocs)
	}
	if reg.Snapshot().Counter("ipdelta_convert_total") == 0 {
		t.Fatal("observer recorded nothing; the gate proved the wrong thing")
	}
}

// TestBuildCRWIProbe sanity-checks the structural probe against Stats.
func TestBuildCRWIProbe(t *testing.T) {
	d := QuadraticDelta(9)
	cv := NewConverter()
	copies, edges, err := cv.BuildCRWI(d)
	if err != nil {
		t.Fatalf("BuildCRWI: %v", err)
	}
	if want := 2*9 - 1; copies != want {
		t.Fatalf("copies = %d, want %d", copies, want)
	}
	if want := 8 * 9; edges != want { // (b−1)·b edges, §6 Figure 3
		t.Fatalf("edges = %d, want %d", edges, want)
	}
	if _, _, err := cv.BuildCRWI(&delta.Delta{}); err != nil {
		t.Fatalf("BuildCRWI on empty delta: %v", err)
	}
}
