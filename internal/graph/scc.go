package graph

// StronglyConnectedComponents returns the SCCs of g using an iterative
// Tarjan algorithm. Every vertex appears in exactly one component;
// components are returned in reverse topological order of the condensation
// (Tarjan's natural output order). Singleton components without self-loops
// are trivially acyclic; every cycle of g lives inside one component.
func StronglyConnectedComponents(g *Digraph) [][]int {
	n := g.NumVertices()
	const unvisited = -1
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for k := range index {
		index[k] = unvisited
	}
	var (
		counter int32
		stack   []int32 // Tarjan stack
		sccs    [][]int
	)

	type frame struct {
		v    int32
		edge int
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{v: int32(root)})
		index[root] = counter
		lowlink[root] = counter
		counter++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(dfs) > 0 {
			top := &dfs[len(dfs)-1]
			succ := g.Succ(int(top.v))
			if top.edge < len(succ) {
				w := succ[top.edge]
				top.edge++
				if index[w] == unvisited {
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && index[w] < lowlink[top.v] {
					lowlink[top.v] = index[w]
				}
				continue
			}
			// Finished top.v: pop an SCC if it is a root.
			v := top.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				if lowlink[v] < lowlink[dfs[len(dfs)-1].v] {
					lowlink[dfs[len(dfs)-1].v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, int(w))
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// GreedyFeedbackVertexSet computes a feedback vertex set with an SCC-scoped
// greedy heuristic: within every non-trivial strongly connected component,
// repeatedly delete the vertex with the best (in·out degree)/cost score
// until the component decomposes. This is an alternative cycle-breaking
// strategy to the paper's DFS-embedded policies, included as an ablation:
// it sees whole components rather than one cycle at a time, at the cost of
// repeated SCC computations.
func GreedyFeedbackVertexSet(g *Digraph, cost CostFunc) []int {
	removed := make([]bool, g.NumVertices())
	var out []int
	// Work queue of vertex sets that may still contain cycles.
	queue := [][]int{allVertices(g.NumVertices())}
	for len(queue) > 0 {
		verts := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		sub, fromSub := subgraph(g, verts, removed)
		for _, comp := range StronglyConnectedComponents(sub) {
			if len(comp) < 2 {
				continue // no self-loops exist in CRWI digraphs
			}
			// Delete the best-scoring vertex of this component.
			best, bestScore := -1, -1.0
			inDeg, outDeg := degreesWithin(sub, comp)
			for _, v := range comp {
				score := float64(inDeg[v]*outDeg[v]+1) / float64(cost(fromSub[v])+1)
				if score > bestScore {
					best, bestScore = v, score
				}
			}
			victim := fromSub[best]
			removed[victim] = true
			out = append(out, victim)
			// The component minus the victim may still be cyclic.
			rest := make([]int, 0, len(comp)-1)
			for _, v := range comp {
				if v != best {
					rest = append(rest, fromSub[v])
				}
			}
			queue = append(queue, rest)
		}
	}
	return out
}

func allVertices(n int) []int {
	out := make([]int, n)
	for k := range out {
		out[k] = k
	}
	return out
}

// subgraph builds the induced subgraph on verts minus removed vertices,
// returning it and the mapping from subgraph index to original vertex.
func subgraph(g *Digraph, verts []int, removed []bool) (*Digraph, []int) {
	toSub := make(map[int]int, len(verts))
	var fromSub []int
	for _, v := range verts {
		if removed[v] {
			continue
		}
		toSub[v] = len(fromSub)
		fromSub = append(fromSub, v)
	}
	sub := New(len(fromSub))
	for _, v := range fromSub {
		for _, w := range g.Succ(v) {
			if sw, ok := toSub[int(w)]; ok {
				sub.AddEdge(toSub[v], sw)
			}
		}
	}
	return sub, fromSub
}

// degreesWithin counts in/out degrees restricted to the component.
func degreesWithin(g *Digraph, comp []int) (in, out map[int]int) {
	member := make(map[int]bool, len(comp))
	for _, v := range comp {
		member[v] = true
	}
	in = make(map[int]int, len(comp))
	out = make(map[int]int, len(comp))
	for _, v := range comp {
		for _, w := range g.Succ(v) {
			if member[int(w)] {
				out[v]++
				in[int(w)]++
			}
		}
	}
	return in, out
}
