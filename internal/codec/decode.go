package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"ipdelta/internal/delta"
)

// Header carries the framing information of an encoded delta file.
type Header struct {
	Format     Format
	RefLen     int64
	VersionLen int64
	// NumCommands is the number of encoded codewords, which may exceed the
	// logical command count for legacy formats that split long adds.
	NumCommands int
	// ScratchLen is the scratch bytes the delta requires; nonzero only for
	// the scratch format.
	ScratchLen int64
}

// Decoder reads a delta file command by command, allowing a receiver to
// apply a delta as it streams in without buffering the whole file. The
// trailing CRC32 is verified when the last command has been read; Next
// reports io.EOF only after a successful verification.
type Decoder struct {
	r    *crcReader
	hdr  Header
	left int   // commands still to be read
	next int64 // implicit write offset for ordered formats / compact adds
	done bool  // checksum verified, stream exhausted
	// streaming mode state (see NextStreaming).
	streaming bool
	pending   int64
	// compact-format section state
	copiesLeft int
	addsLeft   int
}

// NewDecoder reads and validates the header.
func NewDecoder(r io.Reader) (*Decoder, error) {
	cr := newCRCReader(r)
	var m [4]byte
	if err := cr.readFull(m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	fb, err := cr.readByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	f := Format(fb)
	if _, err := ParseFormat(f.String()); err != nil {
		return nil, ErrBadFormat
	}
	refLen, err := cr.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: header", ErrTruncated)
	}
	versionLen, err := cr.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: header", ErrTruncated)
	}
	ncmds, err := cr.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: header", ErrTruncated)
	}
	// Header fields are untrusted: reject values that cannot describe a
	// real file before they reach any arithmetic or allocation.
	const maxLen = int64(1) << 56
	if int64(refLen) < 0 || int64(refLen) > maxLen ||
		int64(versionLen) < 0 || int64(versionLen) > maxLen {
		return nil, fmt.Errorf("%w: header lengths", ErrHugeCommand)
	}
	nc, err := intCount(ncmds, "command count")
	if err != nil {
		return nil, err
	}
	d := &Decoder{
		r: cr,
		hdr: Header{
			Format:      f,
			RefLen:      int64(refLen),
			VersionLen:  int64(versionLen),
			NumCommands: nc,
		},
		left: nc,
	}
	if f == FormatScratch {
		n, err := cr.readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: scratch length", ErrTruncated)
		}
		// Subtraction form: n + anything could overflow, n - RefLen cannot
		// once both header lengths are known non-negative and bounded.
		if int64(n) < 0 || int64(n)-d.hdr.RefLen > d.hdr.VersionLen {
			return nil, fmt.Errorf("%w: scratch length", ErrHugeCommand)
		}
		d.hdr.ScratchLen = int64(n)
	}
	if f == FormatCompact {
		n, err := cr.readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: compact copy count", ErrTruncated)
		}
		if n > ncmds {
			return nil, fmt.Errorf("%w: copy section larger than command count", ErrHugeCommand)
		}
		d.copiesLeft = int(n) // n <= ncmds, already bounded by intCount
		d.addsLeft = -1       // read lazily when the copy section is done
	}
	return d, nil
}

// Header returns the decoded framing information.
func (d *Decoder) Header() Header { return d.hdr }

// Next returns the next command, or io.EOF once all commands have been read
// and the checksum verified.
func (d *Decoder) Next() (delta.Command, error) {
	if d.pending > 0 && !d.streaming {
		return delta.Command{}, fmt.Errorf("codec: previous add payload not consumed (%d bytes left)", d.pending)
	}
	if d.left == 0 {
		if d.done {
			return delta.Command{}, io.EOF
		}
		// A compact file with no adds still carries the add-section count.
		if d.hdr.Format == FormatCompact && d.addsLeft < 0 {
			n, err := d.r.readUvarint()
			if err != nil {
				return delta.Command{}, fmt.Errorf("%w: compact add count", ErrTruncated)
			}
			if n != 0 {
				return delta.Command{}, fmt.Errorf("%w: command count disagrees with sections", ErrTruncated)
			}
			d.addsLeft = 0
		}
		if err := d.verify(); err != nil {
			return delta.Command{}, err
		}
		d.done = true
		return delta.Command{}, io.EOF
	}
	d.left--
	switch d.hdr.Format {
	case FormatOrdered, FormatOffsets:
		return d.varintCommand(d.hdr.Format == FormatOffsets)
	case FormatLegacyOrdered, FormatLegacyOffsets:
		return d.legacyCommand(d.hdr.Format == FormatLegacyOffsets)
	case FormatCompact:
		return d.compactCommand()
	case FormatScratch:
		return d.scratchCommand()
	default:
		return delta.Command{}, ErrBadFormat
	}
}

// scratchCommand decodes one command of the scratch format.
func (d *Decoder) scratchCommand() (delta.Command, error) {
	op, err := d.r.readByte()
	if err != nil {
		return delta.Command{}, fmt.Errorf("%w: opcode", ErrTruncated)
	}
	var c delta.Command
	c.Op = delta.Op(op)
	switch c.Op {
	case delta.OpCopy, delta.OpStash:
		f, err := d.r.readUvarint()
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: from offset", ErrTruncated)
		}
		c.From = int64(f)
	case delta.OpAdd, delta.OpUnstash:
		// write offset read below
	default:
		return delta.Command{}, fmt.Errorf("decode scratch: %w", delta.ErrBadOp)
	}
	if c.Op == delta.OpCopy || c.Op == delta.OpAdd || c.Op == delta.OpUnstash {
		t, err := d.r.readUvarint()
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: write offset", ErrTruncated)
		}
		c.To = int64(t)
	}
	l, err := d.r.readUvarint()
	if err != nil {
		return delta.Command{}, fmt.Errorf("%w: length", ErrTruncated)
	}
	c.Length = int64(l)
	if c.Op == delta.OpStash {
		// Stash lengths are bounded by the declared scratch requirement.
		if c.Length <= 0 || c.Length > d.hdr.ScratchLen {
			return delta.Command{}, ErrHugeCommand
		}
	} else if err := d.checkLen(c.Length); err != nil {
		return delta.Command{}, err
	}
	if c.Op == delta.OpAdd && !d.streaming {
		data, err := d.readData(c.Length)
		if err != nil {
			return delta.Command{}, err
		}
		c.Data = data
	}
	return c, nil
}

func (d *Decoder) verify() error {
	want := d.r.crc.Sum32()
	var buf [4]byte
	if err := d.r.readRaw(buf[:]); err != nil {
		return fmt.Errorf("%w: checksum", ErrTruncated)
	}
	if binary.BigEndian.Uint32(buf[:]) != want {
		return ErrChecksum
	}
	return nil
}

// checkLen guards against corrupt inputs demanding absurd allocations.
func (d *Decoder) checkLen(l int64) error {
	if l <= 0 || l > d.hdr.VersionLen {
		return ErrHugeCommand
	}
	return nil
}

// readData reads an l-byte add payload, allocating progressively so a
// forged length in a corrupt file fails on truncated input instead of
// attempting one huge allocation (the header lengths are untrusted too).
func (d *Decoder) readData(l int64) ([]byte, error) {
	const chunk = 64 << 10
	data := make([]byte, 0, min64(l, chunk))
	for int64(len(data)) < l {
		n := min64(l-int64(len(data)), chunk)
		data = append(data, make([]byte, n)...)
		if err := d.r.readFull(data[int64(len(data))-n:]); err != nil {
			return nil, fmt.Errorf("%w: add data", ErrTruncated)
		}
	}
	return data, nil
}

// intCount converts an untrusted wire count to int, rejecting values that
// do not fit in 31 bits so decoder state stays valid on 32-bit platforms.
func intCount(v uint64, what string) (int, error) {
	if v > 1<<31-1 {
		return 0, fmt.Errorf("%w: %s", ErrHugeCommand, what)
	}
	return int(v), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (d *Decoder) varintCommand(offsets bool) (delta.Command, error) {
	op, err := d.r.readByte()
	if err != nil {
		return delta.Command{}, fmt.Errorf("%w: opcode", ErrTruncated)
	}
	var c delta.Command
	c.Op = delta.Op(op)
	if c.Op != delta.OpCopy && c.Op != delta.OpAdd {
		return delta.Command{}, fmt.Errorf("decode: %w", delta.ErrBadOp)
	}
	if c.Op == delta.OpCopy {
		f, err := d.r.readUvarint()
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: copy from", ErrTruncated)
		}
		c.From = int64(f)
	}
	if offsets {
		t, err := d.r.readUvarint()
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: write offset", ErrTruncated)
		}
		c.To = int64(t)
	} else {
		c.To = d.next
	}
	l, err := d.r.readUvarint()
	if err != nil {
		return delta.Command{}, fmt.Errorf("%w: length", ErrTruncated)
	}
	c.Length = int64(l)
	if err := d.checkLen(c.Length); err != nil {
		return delta.Command{}, err
	}
	if c.Op == delta.OpAdd && !d.streaming {
		data, err := d.readData(c.Length)
		if err != nil {
			return delta.Command{}, err
		}
		c.Data = data
	}
	d.next = c.To + c.Length
	return c, nil
}

func (d *Decoder) legacyCommand(offsets bool) (delta.Command, error) {
	op, err := d.r.readByte()
	if err != nil {
		return delta.Command{}, fmt.Errorf("%w: opcode", ErrTruncated)
	}
	var c delta.Command
	if offsets {
		t, err := d.r.readUint(8)
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: write offset", ErrTruncated)
		}
		c.To = int64(t)
	} else {
		c.To = d.next
	}
	switch op {
	case legacyOpAdd:
		l, err := d.r.readByte()
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: add length", ErrTruncated)
		}
		c.Op = delta.OpAdd
		c.Length = int64(l)
		if err := d.checkLen(c.Length); err != nil {
			return delta.Command{}, err
		}
		if !d.streaming {
			data, err := d.readData(c.Length)
			if err != nil {
				return delta.Command{}, err
			}
			c.Data = data
		}
	case legacyOpCopyShort, legacyOpCopyMed, legacyOpCopyLong:
		fw, lw := 2, 1
		if op == legacyOpCopyMed {
			fw, lw = 4, 2
		} else if op == legacyOpCopyLong {
			fw, lw = 8, 4
		}
		f, err := d.r.readUint(fw)
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: copy from", ErrTruncated)
		}
		l, err := d.r.readUint(lw)
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: copy length", ErrTruncated)
		}
		c.Op = delta.OpCopy
		c.From = int64(f)
		c.Length = int64(l)
		if err := d.checkLen(c.Length); err != nil {
			return delta.Command{}, err
		}
	default:
		return delta.Command{}, fmt.Errorf("decode legacy: %w", delta.ErrBadOp)
	}
	d.next = c.To + c.Length
	return c, nil
}

func (d *Decoder) compactCommand() (delta.Command, error) {
	if d.copiesLeft > 0 {
		d.copiesLeft--
		t, err := d.r.readUvarint()
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: compact copy to", ErrTruncated)
		}
		l, err := d.r.readUvarint()
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: compact copy length", ErrTruncated)
		}
		disp, err := d.r.readVarint()
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: compact copy displacement", ErrTruncated)
		}
		c := delta.NewCopy(int64(t)+disp, int64(t), int64(l))
		if err := d.checkLen(c.Length); err != nil {
			return delta.Command{}, err
		}
		return c, nil
	}
	if d.addsLeft < 0 {
		n, err := d.r.readUvarint()
		if err != nil {
			return delta.Command{}, fmt.Errorf("%w: compact add count", ErrTruncated)
		}
		nAdds, err := intCount(n, "compact add count")
		if err != nil {
			return delta.Command{}, err
		}
		d.addsLeft = nAdds
		d.next = 0
	}
	if d.addsLeft == 0 {
		return delta.Command{}, fmt.Errorf("%w: command count disagrees with sections", ErrTruncated)
	}
	d.addsLeft--
	gap, err := d.r.readVarint()
	if err != nil {
		return delta.Command{}, fmt.Errorf("%w: compact add gap", ErrTruncated)
	}
	l, err := d.r.readUvarint()
	if err != nil {
		return delta.Command{}, fmt.Errorf("%w: compact add length", ErrTruncated)
	}
	if err := d.checkLen(int64(l)); err != nil {
		return delta.Command{}, err
	}
	c := delta.Command{Op: delta.OpAdd, To: d.next + gap, Length: int64(l)}
	if !d.streaming {
		data, err := d.readData(c.Length)
		if err != nil {
			return delta.Command{}, err
		}
		c.Data = data
	}
	d.next = c.To + c.Length
	return c, nil
}

// Decode reads a whole delta file. The returned delta's command order is
// the application order carried by the file.
func Decode(r io.Reader) (*delta.Delta, Format, error) {
	out, f, wire, err := decode(r)
	if m := observer.Load(); m != nil {
		if err != nil {
			m.decodeErrors.Inc()
		} else {
			m.decodes.Inc()
			m.decodeBytes.Add(wire)
			m.decodeCommands.Add(int64(len(out.Commands)))
		}
	}
	return out, f, err
}

func decode(r io.Reader) (*delta.Delta, Format, int64, error) {
	dec, err := NewDecoder(r)
	if err != nil {
		return nil, 0, 0, err
	}
	hdr := dec.Header()
	out := &delta.Delta{
		RefLen:     hdr.RefLen,
		VersionLen: hdr.VersionLen,
		Commands:   make([]delta.Command, 0, min64(int64(hdr.NumCommands), 4096)),
	}
	for {
		c, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, dec.r.n, err
		}
		out.Commands = append(out.Commands, c)
	}
	return out, hdr.Format, dec.r.n, nil
}

// crcReader tracks the CRC32 and count of all bytes read through it.
type crcReader struct {
	r   *bufio.Reader
	crc hash.Hash32
	n   int64
}

func newCRCReader(r io.Reader) *crcReader {
	return &crcReader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
}

func (c *crcReader) readByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	c.crc.Write([]byte{b})
	c.n++
	return b, nil
}

func (c *crcReader) readFull(p []byte) error {
	if _, err := io.ReadFull(c.r, p); err != nil {
		return err
	}
	c.crc.Write(p)
	c.n += int64(len(p))
	return nil
}

// readRaw reads without hashing; used for the trailing checksum itself.
func (c *crcReader) readRaw(p []byte) error {
	n, err := io.ReadFull(c.r, p)
	c.n += int64(n)
	return err
}

func (c *crcReader) readUvarint() (uint64, error) {
	return binary.ReadUvarint(byteReaderFunc(c.readByte))
}

func (c *crcReader) readVarint() (int64, error) {
	return binary.ReadVarint(byteReaderFunc(c.readByte))
}

func (c *crcReader) readUint(width int) (uint64, error) {
	var buf [8]byte
	if err := c.readFull(buf[8-width:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(buf[:]), nil
}

// byteReaderFunc adapts a func to io.ByteReader for binary.ReadUvarint.
type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }
