package inplace

import (
	"cmp"
	"fmt"
	"slices"

	"ipdelta/internal/codec"
	"ipdelta/internal/delta"
	"ipdelta/internal/graph"
	"ipdelta/internal/obs"
)

// converterMetrics holds the pre-resolved metric handles of an observed
// Converter. Resolution happens once, in init, so the convert hot path
// performs no registry lookups and no allocations — just atomic adds and
// two time.Now calls per stage.
type converterMetrics struct {
	conversions   *obs.Counter
	errors        *obs.Counter
	edges         *obs.Counter
	cyclesBroken  *obs.Counter // name carries the policy label
	cycleVertices *obs.Counter
	converted     *obs.Counter
	convertedB    *obs.Counter
	stashed       *obs.Counter
	scratchB      *obs.Counter

	partitionStage obs.Stage
	crwiStage      obs.Stage
	sortStage      obs.Stage // toposort (DFS) or FVS+toposort (SCC greedy)
	emitStage      obs.Stage
}

// resolveConverterMetrics binds the convert metric set (DESIGN.md §9) in
// r. The cycle counters carry the policy as a baked-in label, so the
// operator can compare policies without per-event formatting.
func resolveConverterMetrics(r *obs.Registry, policy string) *converterMetrics {
	label := "{policy=\"" + policy + "\"}"
	return &converterMetrics{
		conversions:   r.Counter("ipdelta_convert_total"),
		errors:        r.Counter("ipdelta_convert_errors_total"),
		edges:         r.Counter("ipdelta_convert_edges_total"),
		cyclesBroken:  r.Counter("ipdelta_convert_cycles_broken_total" + label),
		cycleVertices: r.Counter("ipdelta_convert_cycle_vertices_total" + label),
		converted:     r.Counter("ipdelta_convert_converted_copies_total"),
		convertedB:    r.Counter("ipdelta_convert_converted_bytes_total"),
		stashed:       r.Counter("ipdelta_convert_stashed_copies_total"),
		scratchB:      r.Counter("ipdelta_convert_scratch_bytes_total"),

		partitionStage: r.Stage("ipdelta_convert_stage_partition_nanos"),
		crwiStage:      r.Stage("ipdelta_convert_stage_crwi_nanos"),
		sortStage:      r.Stage("ipdelta_convert_stage_toposort_nanos"),
		emitStage:      r.Stage("ipdelta_convert_stage_emit_nanos"),
	}
}

// Converter performs in-place conversions over one reusable set of working
// memory: the copy/add partition, the CRWI digraph in CSR form, the
// topological-sort state, and the output buffers. A steady-state server
// (batch prewarm, per-connection conversion loop) converts thousands of
// deltas; with the free Convert function every call rebuilt all of that
// state from the heap, which cost more than the O(|C| log |C| + |E|)
// algorithm itself. A Converter amortizes it to zero allocations per call.
//
// A Converter is not safe for concurrent use; use one per worker (see
// ConvertBatch).
type Converter struct {
	o      Options
	costFn graph.CostFunc

	validator delta.Validator
	copies    []delta.Command
	adds      []delta.Command
	crwi      crwiScratch
	topo      graph.TopoScratch
	mask      []bool // StrategySCCGreedy removal mask

	stashes    []delta.Command
	unstashes  []delta.Command
	converted  []delta.Command
	addVictims []int
	arena      []byte // literal data of converted copies (pooled mode)

	out   delta.Delta
	stats Stats
	met   *converterMetrics // nil when no observer is attached
}

// NewConverter returns a Converter with the given options applied. The
// zero value of Converter is also usable and behaves like NewConverter().
func NewConverter(opts ...Option) *Converter {
	cv := &Converter{}
	for _, opt := range opts {
		opt(&cv.o)
	}
	return cv
}

// init fills in defaults the zero value leaves unset.
func (cv *Converter) init() {
	if cv.o.policy == nil {
		cv.o.policy = graph.LocallyMinimum{}
	}
	if cv.o.strategy == 0 {
		cv.o.strategy = StrategyDFS
	}
	if cv.met == nil && cv.o.obs != nil {
		name := cv.o.policy.Name()
		if cv.o.strategy == StrategySCCGreedy {
			name = "scc-greedy"
		}
		cv.met = resolveConverterMetrics(cv.o.obs, name)
	}
	if cv.costFn == nil {
		// The cost of deleting a vertex is the compression lost by
		// re-encoding its copy as an add: l − |f|, with |f| the varint
		// size of the from-offset. Bound once so steady-state calls do
		// not allocate a closure.
		cv.costFn = func(v int) int64 {
			c := &cv.copies[v]
			return c.Length - int64(codec.UvarintLen(uint64(c.From)))
		}
	}
}

// Convert rewrites d into an in-place reconstructible delta, like the free
// Convert function, but reuses the converter's working memory: in steady
// state it performs no heap allocations. The returned delta and stats are
// owned by the Converter and remain valid only until its next call;
// callers that retain results across calls must use ConvertNew or clone.
// The input delta is not modified; the output's unconverted add commands
// share data slices with the input.
func (cv *Converter) Convert(d *delta.Delta, ref []byte) (*delta.Delta, *Stats, error) {
	return cv.convert(d, ref, false)
}

// ConvertNew is Convert with freshly allocated, caller-owned output: the
// returned delta and stats may be retained indefinitely. The converter's
// internal working memory (partition, digraph, sort state) is still
// reused, so a loop of ConvertNew calls allocates only what the results
// themselves need.
func (cv *Converter) ConvertNew(d *delta.Delta, ref []byte) (*delta.Delta, *Stats, error) {
	return cv.convert(d, ref, true)
}

// BuildCRWI partitions d's commands, sorts the copies by write offset and
// builds their CRWI digraph over the converter's pooled scratch, without
// converting. It returns the copy and edge counts — a cheap structural
// probe, and the measurement hook the benchmark-baseline harness uses to
// time digraph construction alone.
func (cv *Converter) BuildCRWI(d *delta.Delta) (copies, edges int, err error) {
	cv.init()
	if err := cv.validator.Validate(d); err != nil {
		return 0, 0, fmt.Errorf("convert: %w", err)
	}
	cv.partition(d)
	slices.SortFunc(cv.copies, commandsByWriteOffset)
	g := cv.crwi.build(cv.copies)
	return len(cv.copies), g.NumEdges(), nil
}

// partition splits d's commands into the copy and add scratch slices.
//
//ipvet:allocfree
func (cv *Converter) partition(d *delta.Delta) {
	cv.copies, cv.adds = cv.copies[:0], cv.adds[:0]
	for _, c := range d.Commands {
		if c.Op == delta.OpCopy {
			cv.copies = append(cv.copies, c)
		} else {
			cv.adds = append(cv.adds, c)
		}
	}
}

// commandsByWriteOffset orders commands by increasing write offset. Write
// intervals of a valid delta are disjoint, so the order is strict.
//
//ipvet:allocfree
func commandsByWriteOffset(a, b delta.Command) int { return cmp.Compare(a.To, b.To) }

func (cv *Converter) convert(d *delta.Delta, ref []byte, detach bool) (*delta.Delta, *Stats, error) {
	cv.init()
	if err := cv.validator.Validate(d); err != nil {
		if cv.met != nil {
			cv.met.errors.Inc()
		}
		return nil, nil, fmt.Errorf("convert: %w", err)
	}
	if int64(len(ref)) != d.RefLen {
		if cv.met != nil {
			cv.met.errors.Inc()
		}
		return nil, nil, fmt.Errorf("convert: reference length %d, delta expects %d", len(ref), d.RefLen)
	}

	// Step 1: partition into copies and adds.
	var span obs.Span
	if cv.met != nil {
		span = cv.met.partitionStage.Start()
	}
	cv.partition(d)
	policyName := cv.o.policy.Name()
	if cv.o.strategy == StrategySCCGreedy {
		policyName = "scc-greedy"
	}
	cv.stats = Stats{
		Copies: len(cv.copies),
		Adds:   len(cv.adds),
		Policy: policyName,
	}

	// Step 2: sort copies by increasing write offset.
	slices.SortFunc(cv.copies, commandsByWriteOffset)
	if cv.met != nil {
		span.End()
		span = cv.met.crwiStage.Start()
	}

	// Step 3: build the CRWI digraph (sweep-line merge, CSR form).
	g := cv.crwi.build(cv.copies)
	cv.stats.Edges = g.NumEdges()
	if cv.met != nil {
		span.End()
		span = cv.met.sortStage.Start()
	}

	// Step 4: topological sort with cycle breaking.
	var order, removed []int
	switch cv.o.strategy {
	case StrategySCCGreedy:
		removed = graph.GreedyFeedbackVertexSet(g, cv.costFn)
		if cap(cv.mask) < len(cv.copies) {
			cv.mask = make([]bool, len(cv.copies))
		} else {
			cv.mask = cv.mask[:len(cv.copies)]
			clear(cv.mask)
		}
		for _, v := range removed {
			cv.mask[v] = true
			cv.stats.RemovedCost += cv.costFn(v)
		}
		var ok bool
		order, ok = graph.TopoSortExcluding(g, cv.mask)
		if !ok {
			// The greedy set is acyclic by construction; this is a bug.
			if cv.met != nil {
				cv.met.errors.Inc()
			}
			return nil, nil, fmt.Errorf("convert: SCC strategy left a cycle")
		}
		cv.stats.CyclesBroken = len(removed)
	default:
		res := cv.topo.Sort(g, cv.costFn, cv.o.policy)
		order, removed = res.Order, res.Removed
		cv.stats.CyclesBroken = res.CyclesBroken
		cv.stats.CycleVertices = res.CycleVertices
		cv.stats.RemovedCost = res.RemovedCost
	}
	if cv.met != nil {
		span.End()
		span = cv.met.emitStage.Start()
	}

	// Step 5: emit — stashes, surviving copies in topological order,
	// unstashes, converted copies as adds, then the original adds, both
	// add groups sorted by write offset for determinism.
	//
	// Bounded-scratch extension: removed copies that fit the budget are
	// stashed up front (while their source bytes are still original) and
	// unstashed at the end, instead of carrying their data as adds.
	budget := cv.o.scratch
	cv.stashes, cv.unstashes, cv.addVictims = cv.stashes[:0], cv.unstashes[:0], cv.addVictims[:0]
	for _, v := range removed {
		c := cv.copies[v]
		if c.Length <= budget {
			cv.stashes = append(cv.stashes, delta.NewStash(c.From, c.Length))
			cv.unstashes = append(cv.unstashes, delta.NewUnstash(c.To, c.Length))
			budget -= c.Length
			cv.stats.StashedCopies++
			cv.stats.ScratchUsed += c.Length
			continue
		}
		cv.addVictims = append(cv.addVictims, v)
	}

	cmds := cv.out.Commands[:0]
	if detach {
		cmds = make([]delta.Command, 0, len(d.Commands)+len(removed))
	}
	cmds = append(cmds, cv.stashes...)
	for _, v := range order {
		cmds = append(cmds, cv.copies[v])
	}
	cmds = append(cmds, cv.unstashes...)

	// Converted copies carry their reference bytes in one arena, sized up
	// front so the per-command sub-slices stay valid as it fills.
	var total int64
	for _, v := range cv.addVictims {
		total += cv.copies[v].Length
	}
	arena := cv.arena
	if detach {
		arena = make([]byte, 0, total)
	} else if int64(cap(arena)) < total {
		arena = make([]byte, 0, total)
	} else {
		arena = arena[:0]
	}
	cv.converted = cv.converted[:0]
	for _, v := range cv.addVictims {
		c := cv.copies[v]
		start := int64(len(arena))
		arena = append(arena, ref[c.From:c.From+c.Length]...)
		data := arena[start:len(arena):len(arena)]
		cv.converted = append(cv.converted, delta.NewAdd(c.To, data))
		cv.stats.ConvertedCopies++
		cv.stats.ConvertedBytes += c.Length
	}
	if !detach {
		cv.arena = arena
	}
	slices.SortFunc(cv.converted, commandsByWriteOffset)
	cmds = append(cmds, cv.converted...)

	// cv.adds is the converter's own copy of the input's add commands, so
	// it can be sorted in place.
	slices.SortFunc(cv.adds, commandsByWriteOffset)
	cmds = append(cmds, cv.adds...)

	if cv.met != nil {
		span.End()
		m := cv.met
		m.conversions.Inc()
		m.edges.Add(int64(cv.stats.Edges))
		m.cyclesBroken.Add(int64(cv.stats.CyclesBroken))
		m.cycleVertices.Add(int64(cv.stats.CycleVertices))
		m.converted.Add(int64(cv.stats.ConvertedCopies))
		m.convertedB.Add(cv.stats.ConvertedBytes)
		m.stashed.Add(int64(cv.stats.StashedCopies))
		m.scratchB.Add(cv.stats.ScratchUsed)
	}
	if detach {
		out := &delta.Delta{RefLen: d.RefLen, VersionLen: d.VersionLen, Commands: cmds}
		st := cv.stats
		return out, &st, nil
	}
	cv.out = delta.Delta{RefLen: d.RefLen, VersionLen: d.VersionLen, Commands: cmds}
	return &cv.out, &cv.stats, nil
}

// crwiScratch builds CRWI digraphs in CSR form with a sweep-line merge,
// over buffers reused across builds.
//
// The CRWI digraph has an edge i→j whenever copy i's read interval
// [f_i, f_i+l_i-1] intersects copy j's write interval [t_j, t_j+l_j-1]
// (so i must execute before j to avoid the write-before-read conflict).
// With copies sorted by write offset, both the write starts and the write
// ends are strictly increasing, so the writes conflicting with a read form
// one contiguous index range. The reference builder (buildCRWI) locates
// that range with a binary search per copy; here the reads are visited in
// start order and the range's left end only ever advances, replacing the
// per-copy O(log |C|) search with an amortized O(1) pointer advance:
// O(|C| log |C|) for the read-order sort plus O(|C| + |E|) for the sweep,
// with the log-factor work now a plain sort instead of |C| scattered
// binary searches. The edge set is identical to the reference builder's
// (property-tested), including per-vertex successor order.
type crwiScratch struct {
	b         graph.CSRBuilder
	readOrder []int32 // copy indices ordered by read-interval start
	firstW    []int32 // per copy: first conflicting write index
	endW      []int32 // per copy: one past the last conflicting write index
}

// build constructs the CRWI digraph over copies, which must be sorted by
// write offset. The returned graph is backed by the scratch and valid
// until the next build.
func (cs *crwiScratch) build(copies []delta.Command) *graph.CSR {
	n := len(copies)
	cs.readOrder = growIndex(cs.readOrder, n)
	cs.firstW = growIndex(cs.firstW, n)
	cs.endW = growIndex(cs.endW, n)
	for i := 0; i < n; i++ {
		cs.readOrder[i] = int32(i)
	}
	slices.SortFunc(cs.readOrder, func(a, b int32) int {
		return cmp.Compare(copies[a].From, copies[b].From)
	})

	// Sweep: for each copy i in read-start order, the conflicting writes
	// are [w, j): w is the first write ending at or after the read start
	// (monotone in the read start, so the pointer only advances), and j
	// walks forward over the writes starting within the read. The walks
	// sum to |E| plus at most one self-overlap per copy.
	w := 0
	for _, ri := range cs.readOrder {
		i := int(ri)
		c := copies[i]
		readLo, readHi := c.From, c.From+c.Length-1
		for w < n && copies[w].To+copies[w].Length-1 < readLo {
			w++
		}
		j := w
		for j < n && copies[j].To <= readHi {
			j++
		}
		cs.firstW[i], cs.endW[i] = int32(w), int32(j)
	}

	// Two-pass CSR build over the recorded ranges. A copy never conflicts
	// with itself (§4.1), so i is skipped inside its own range.
	cs.b.Reset(n)
	for i := 0; i < n; i++ {
		deg := int(cs.endW[i] - cs.firstW[i])
		if cs.firstW[i] <= int32(i) && int32(i) < cs.endW[i] {
			deg--
		}
		cs.b.AddDegree(i, deg)
	}
	cs.b.StartFill()
	for i := 0; i < n; i++ {
		for j := cs.firstW[i]; j < cs.endW[i]; j++ {
			if int(j) == i {
				continue
			}
			cs.b.FillEdge(i, int(j))
		}
	}
	return cs.b.Finish()
}

// growIndex returns s resized to n elements, reusing capacity. Contents
// are unspecified; callers overwrite every element.
func growIndex(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
