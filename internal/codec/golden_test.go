package codec

import (
	"bytes"
	"encoding/hex"
	"testing"

	"ipdelta/internal/delta"
)

// TestGoldenWireFormat pins the exact bytes of each format for a small
// fixed delta. Any change to these bytes is a wire-format break: bump the
// magic version instead of editing the expectations.
func TestGoldenWireFormat(t *testing.T) {
	d := &delta.Delta{
		RefLen:     16,
		VersionLen: 12,
		Commands: []delta.Command{
			delta.NewCopy(4, 0, 8),
			delta.NewAdd(8, []byte("WXYZ")),
		},
	}
	want := map[Format]string{
		FormatOrdered:       "4950440101100c0201040802045758595af38b14ea",
		FormatOffsets:       "4950440102100c02010400080208045758595aa480aabe",
		FormatLegacyOrdered: "4950440103100c02c1000408a1045758595a6a9c1af0",
		FormatLegacyOffsets: "4950440104100c02c10000000000000000000408a1" +
			"0000000000000008045758595adbad7a4b",
		FormatCompact: "4950440105100c02010008080110045758595a53df3dad",
	}
	for format, wantHex := range want {
		var buf bytes.Buffer
		if _, err := Encode(&buf, d, format); err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		got := hex.EncodeToString(buf.Bytes())
		if got != wantHex {
			t.Errorf("%v wire bytes changed:\n got  %s\n want %s", format, got, wantHex)
		}
	}
}
