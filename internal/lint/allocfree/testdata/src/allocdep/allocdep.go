// Test dependency package for allocfree: exports one allocation-free
// function and one allocating function, so the target package exercises
// imported AllocFacts in both directions. No function here is annotated,
// so the package itself produces no diagnostics.
package allocdep

// Sum is allocation-free; its exported fact says so.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Grow allocates; its exported fact carries the reason.
func Grow(n int) []int {
	return make([]int, n)
}
