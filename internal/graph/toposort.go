package graph

// SortResult is the outcome of a cycle-breaking topological sort.
type SortResult struct {
	// Order lists the surviving vertices so that for every edge u→v with
	// both endpoints surviving, u precedes v.
	Order []int
	// Removed lists the vertices deleted to break cycles, in deletion
	// order.
	Removed []int
	// CyclesBroken counts the cycles encountered.
	CyclesBroken int
	// CycleVertices sums the lengths of the cycles examined; for the
	// locally-minimum policy this is proportional to the extra work done.
	CycleVertices int
	// RemovedCost sums cost(v) over removed vertices — the compression
	// lost to cycle breaking.
	RemovedCost int64
}

// vertex colors for the DFS.
const (
	white   = 0 // unvisited
	gray    = 1 // on the DFS path
	black   = 2 // finished
	deleted = 3 // removed to break a cycle
)

// TopoSort runs a depth-first topological sort over g, detecting cycles as
// they are closed and deleting one vertex per cycle chosen by the policy
// (§4.2 of the paper, "enhanced topological sort"). Roots are explored in
// ascending vertex order; since package inplace numbers vertices by write
// offset, ties are resolved in write order just as the paper's algorithm
// sorts its copy commands.
//
// The surviving subgraph is totally ordered: for every edge u→v between
// survivors, u appears before v in Order, satisfying Equation 2 when the
// vertices are copy commands and edges are potential WR conflicts.
func TopoSort(g *Digraph, cost CostFunc, policy Policy) *SortResult {
	n := g.NumVertices()
	res := &SortResult{Order: make([]int, 0, n)}
	color := make([]byte, n)
	// postorder accumulates finished vertices; reversing it yields a
	// topological order.
	postorder := make([]int, 0, n)

	type frame struct {
		v    int32
		edge int // next adjacency index to examine
	}
	var stack []frame

	push := func(v int32) {
		color[v] = gray
		stack = append(stack, frame{v: v})
	}

	for root := 0; root < n; root++ {
		if color[root] != white {
			continue
		}
		push(int32(root))
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			succ := g.Succ(int(top.v))
			if top.edge >= len(succ) {
				color[top.v] = black
				postorder = append(postorder, int(top.v))
				stack = stack[:len(stack)-1]
				continue
			}
			w := succ[top.edge]
			top.edge++
			switch color[w] {
			case white:
				push(w)
			case gray:
				// Edge top.v → w closes a cycle running from w along the
				// DFS path to top.v. Collect it in path order.
				at := len(stack) - 1
				for stack[at].v != w {
					at--
				}
				cycle := make([]int, 0, len(stack)-at)
				for k := at; k < len(stack); k++ {
					cycle = append(cycle, int(stack[k].v))
				}
				res.CyclesBroken++
				res.CycleVertices += len(cycle)
				victim := policy.SelectVictim(cycle, cost)
				res.Removed = append(res.Removed, victim)
				res.RemovedCost += cost(victim)
				color[victim] = deleted

				// Unwind the DFS path back to just below the victim. The
				// vertices above the victim return to white with fresh
				// edge iterators; they will be re-explored along paths
				// that avoid the deleted vertex.
				vat := at
				for stack[vat].v != int32(victim) {
					vat++
				}
				for k := vat + 1; k < len(stack); k++ {
					color[stack[k].v] = white
				}
				stack = stack[:vat]
			}
		}
	}

	// Reverse postorder = topological order.
	for k := len(postorder) - 1; k >= 0; k-- {
		res.Order = append(res.Order, postorder[k])
	}
	return res
}

// VerifyTopological checks that order together with removed is a valid
// outcome for g: every vertex appears exactly once in order or removed,
// and every edge between surviving vertices goes forward in order. It
// returns false otherwise. Intended for tests and self-checks.
func VerifyTopological(g *Digraph, res *SortResult) bool {
	n := g.NumVertices()
	pos := make([]int, n)
	for k := range pos {
		pos[k] = -1
	}
	seen := 0
	for k, v := range res.Order {
		if v < 0 || v >= n || pos[v] != -1 {
			return false
		}
		pos[v] = k
		seen++
	}
	removed := make([]bool, n)
	for _, v := range res.Removed {
		if v < 0 || v >= n || removed[v] || pos[v] != -1 {
			return false
		}
		removed[v] = true
		seen++
	}
	if seen != n {
		return false
	}
	for u := 0; u < n; u++ {
		if removed[u] {
			continue
		}
		for _, w := range g.Succ(u) {
			if removed[w] {
				continue
			}
			if pos[u] >= pos[w] {
				return false
			}
		}
	}
	return true
}
