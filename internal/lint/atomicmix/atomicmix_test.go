package atomicmix_test

import (
	"testing"

	"ipdelta/internal/lint/analysistest"
	"ipdelta/internal/lint/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	// The counters fixture carries every local mixed-access form and the
	// golden file checks the atomic.Load/Store rewrites byte for byte.
	t.Run("fixes", func(t *testing.T) {
		analysistest.RunWithFixes(t, atomicmix.Analyzer, "counters")
	})
	// The mixed fixture reads a field that only its dependency touches
	// atomically: the taint arrives as an imported fact, and with no
	// sync/atomic import in the file there is no suggested fix.
	t.Run("crosspkg", func(t *testing.T) {
		out := analysistest.Run(t, atomicmix.Analyzer, "mixed", "atomdep")
		for _, d := range out.Diagnostics {
			if len(d.Fixes) != 0 {
				t.Errorf("%s: unexpected suggested fix in a file that does not import sync/atomic", d.Pos)
			}
		}
	})
}
