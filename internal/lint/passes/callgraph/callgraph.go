// Package callgraph is a shared analysis pass that computes each
// package's static call graph and hands it to dependent analyzers
// (allocfree, lockorder) through pass.ResultOf. Per function it records
// the resolvable static callees — package functions, methods on concrete
// receivers, and cross-package calls — and the positions of dynamic calls
// (function values, interface methods) that no lexical analysis can
// resolve. Calls made inside a function literal are attributed to the
// enclosing declared function: for the summary-style analyses built on
// this pass, a closure's effects are an over-approximation of the
// encloser's dynamic extent, which errs toward reporting.
//
// The intra-package graph is condensed with internal/graph's Tarjan SCC —
// the same machinery the converter runs over CRWI digraphs — and exposed
// in callee-first order, so bottom-up summary computations (is this
// function allocation-free? which locks does it take?) visit callees
// before callers and handle mutual recursion one component at a time.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ipdelta/internal/graph"
	"ipdelta/internal/lint/analysis"
)

// Analyzer is the callgraph pass.
var Analyzer = &analysis.Analyzer{
	Name: "callgraph",
	Doc:  "computes the package call graph and its SCC condensation for dependent analyzers",
	Run:  run,
}

// Call is one resolved static call site.
type Call struct {
	Callee *types.Func
	Pos    token.Pos
}

// Node is one declared function or method of the package.
type Node struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	// Static lists resolvable call sites in source order, including
	// calls to other packages.
	Static []Call
	// Dynamic lists call sites through function values or interface
	// methods, which summaries cannot follow.
	Dynamic []token.Pos
}

// Result is the pass's output for one package.
type Result struct {
	// Nodes indexes every declared function and method.
	Nodes map[*types.Func]*Node
	// BottomUp groups the package's functions into strongly connected
	// components of the intra-package call graph, callees before
	// callers; mutually recursive functions share a component.
	BottomUp [][]*Node
}

func run(pass *analysis.Pass) (any, error) {
	res := &Result{Nodes: map[*types.Func]*Node{}}
	var order []*Node
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			node := &Node{Obj: obj, Decl: fd}
			collectCalls(pass, fd.Body, node)
			res.Nodes[obj] = node
			order = append(order, node)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Decl.Pos() < order[j].Decl.Pos() })

	// Intra-package condensation via Tarjan: components come out in
	// reverse topological order of the condensation, i.e. callees first.
	index := map[*types.Func]int{}
	for i, n := range order {
		index[n.Obj] = i
	}
	g := graph.New(len(order))
	for i, n := range order {
		for _, c := range n.Static {
			if j, ok := index[c.Callee]; ok && j != i {
				g.AddEdge(i, j)
			}
		}
	}
	// Edges point caller → callee, so Tarjan's natural output order
	// (reverse topological) emits callees before callers.
	for _, comp := range graph.StronglyConnectedComponents(g) {
		nodes := make([]*Node, len(comp))
		for k, v := range comp {
			nodes[k] = order[v]
		}
		res.BottomUp = append(res.BottomUp, nodes)
	}
	return res, nil
}

// collectCalls records every call in body on node, resolving what it can.
func collectCalls(pass *analysis.Pass, body ast.Node, node *Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		// Type conversions are not calls.
		if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
			return true
		}
		switch f := fun.(type) {
		case *ast.Ident:
			switch obj := pass.ObjectOf(f).(type) {
			case *types.Func:
				node.Static = append(node.Static, Call{Callee: obj, Pos: call.Pos()})
			case *types.Builtin, *types.TypeName, nil:
				// append/make/len/…, conversions: not calls we track.
			default:
				node.Dynamic = append(node.Dynamic, call.Pos())
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[f]; ok {
				// Method call. Interface dispatch is dynamic; a method
				// on a concrete receiver is static.
				callee, _ := sel.Obj().(*types.Func)
				if callee == nil {
					node.Dynamic = append(node.Dynamic, call.Pos())
					return true
				}
				if types.IsInterface(sel.Recv()) {
					node.Dynamic = append(node.Dynamic, call.Pos())
					return true
				}
				node.Static = append(node.Static, Call{Callee: callee, Pos: call.Pos()})
				return true
			}
			// Package-qualified reference: pkg.F.
			switch obj := pass.ObjectOf(f.Sel).(type) {
			case *types.Func:
				node.Static = append(node.Static, Call{Callee: obj, Pos: call.Pos()})
			case *types.TypeName, nil:
			default:
				node.Dynamic = append(node.Dynamic, call.Pos())
			}
		default:
			// Call of a call result, function literal invoked in place,
			// index expression, …: dynamic.
			node.Dynamic = append(node.Dynamic, call.Pos())
		}
		return true
	})
}
