// Package b imports package a through the loader's overlay.
package b

import "a"

// Twice uses the overlay dependency.
func Twice() int { return 2 * a.Answer() }
