package diff

import (
	"bytes"
	"sync"
	"sync/atomic"

	"ipdelta/internal/delta"
	"ipdelta/internal/obs"
)

// diffMetrics holds the pre-resolved metric handles of an observed
// differencer (DESIGN.md §9). Resolved once at construction; per-diff
// updates are atomic adds and stage spans only, so an observed Differ
// keeps its zero-allocation steady state.
type diffMetrics struct {
	diffs        *obs.Counter
	refBytes     *obs.Counter
	versionBytes *obs.Counter
	commands     *obs.Counter
	strided      *obs.Counter // table builds that used an anchor stride > 1

	tableStage obs.Stage // match-table (fingerprint index) build
	emitStage  obs.Stage // version scan + command emission
}

// resolveDiffMetrics binds the diff metric set in r.
func resolveDiffMetrics(r *obs.Registry) *diffMetrics {
	return &diffMetrics{
		diffs:        r.Counter("ipdelta_diff_total"),
		refBytes:     r.Counter("ipdelta_diff_ref_bytes_total"),
		versionBytes: r.Counter("ipdelta_diff_version_bytes_total"),
		commands:     r.Counter("ipdelta_diff_commands_total"),
		strided:      r.Counter("ipdelta_diff_strided_builds_total"),
		tableStage:   r.Stage("ipdelta_diff_stage_table_nanos"),
		emitStage:    r.Stage("ipdelta_diff_stage_emit_nanos"),
	}
}

// Linear is the linear-time, constant-space differencer. A fixed-size table
// maps Karp–Rabin fingerprints of reference seeds (p-byte substrings) to
// their first occurrence; the version file is scanned left to right, and a
// fingerprint hit that verifies byte-wise is extended forward as far as the
// files agree and backward into any still-unmatched literal bytes.
//
// Time is O(L_R + L_V); space is the fixed table regardless of input size,
// matching the O(1)-space claim the paper cites for its delta generator.
//
// Diff's working memory (the fingerprint table and the emitter) is pooled
// per instance, so repeated and concurrent calls reuse it instead of
// reallocating the table — at the default 18 table bits, a 1 MiB
// allocation per call. Callers in a single-threaded steady state can do
// better still with a Differ.
type Linear struct {
	seedLen   int
	tableBits uint
	obs       *obs.Registry
	met       *diffMetrics // resolved from obs at construction
	pool      sync.Pool    // of *linearState
}

// LinearOption customizes a Linear differencer.
type LinearOption func(*Linear)

// WithSeedLen sets the seed (minimum match) length; shorter seeds find more
// matches but emit smaller copies. The default is 16; the minimum 4.
func WithSeedLen(p int) LinearOption {
	return func(l *Linear) {
		if p < 4 {
			p = 4
		}
		l.seedLen = p
	}
}

// WithTableBits sets the fingerprint table size to 2^bits entries
// (default 18, i.e. 256Ki entries).
func WithTableBits(bits uint) LinearOption {
	return func(l *Linear) {
		if bits < 8 {
			bits = 8
		}
		if bits > 26 {
			bits = 26
		}
		l.tableBits = bits
	}
}

// WithObserver attaches a metrics registry: every diff then records the
// match-table-build and emit stage timings plus input/output volume
// counters. Handles are resolved here, once, keeping the per-diff path
// allocation-free. A nil registry means unobserved.
func WithObserver(r *obs.Registry) LinearOption {
	return func(l *Linear) { l.obs = r }
}

// NewLinear returns a linear differencer with the given options applied.
func NewLinear(opts ...LinearOption) *Linear {
	l := &Linear{seedLen: 16, tableBits: 18}
	for _, o := range opts {
		o(l)
	}
	if l.obs != nil {
		l.met = resolveDiffMetrics(l.obs)
	}
	return l
}

// Name implements Algorithm.
func (l *Linear) Name() string { return "linear" }

// krBase is the Karp–Rabin multiplier; arithmetic is modulo 2^64.
const krBase = 0x100000001b3 // the FNV prime, a fine odd multiplier

// krPow caches the low powers of krBase: krPow[i] = krBase^i mod 2^64.
// The unrolled hash kernel below turns eight dependent multiply-adds into
// eight independent products against these constants, which the CPU can
// issue in parallel.
var krPow = computeKRPow()

func computeKRPow() (pw [9]uint64) {
	pw[0] = 1
	for i := 1; i < len(pw); i++ {
		pw[i] = pw[i-1] * krBase
	}
	return pw
}

// krHash computes the Karp–Rabin hash of b in unrolled 8-byte chunks. It
// is bit-identical to feeding b through krHasher.roll byte by byte: the
// chunked form only regroups the Horner evaluation into independent
// products so a p-byte anchor hashes in ~p/8 dependent steps.
//
//ipvet:allocfree
func krHash(b []byte) uint64 {
	var h uint64
	i := 0
	for ; i+8 <= len(b); i += 8 {
		h = h*krPow[8] +
			uint64(b[i])*krPow[7] + uint64(b[i+1])*krPow[6] +
			uint64(b[i+2])*krPow[5] + uint64(b[i+3])*krPow[4] +
			uint64(b[i+4])*krPow[3] + uint64(b[i+5])*krPow[2] +
			uint64(b[i+6])*krPow[1] + uint64(b[i+7])
	}
	for ; i < len(b); i++ {
		h = h*krBase + uint64(b[i])
	}
	return h
}

// strideFor picks the reference indexing stride from the number of seed
// positions. Large references are anchored at every stride-th offset
// instead of every offset: a common substring of length >= p+stride-1
// still covers an anchor, and forward/backward extension recovers the
// skipped bytes, so only matches within stride-1 bytes of the minimum
// seed length can be lost (the alignment-robustness argument of
// arXiv:1502.07830). In exchange the table build does 1/stride of the
// inserts and the table itself shrinks by the same factor, which is what
// keeps it cache-resident (see tableBitsFor).
//
//ipvet:allocfree
func strideFor(nseeds int) int {
	switch {
	case nseeds >= 1<<20:
		return 8
	case nseeds >= 1<<18:
		return 4
	case nseeds >= 1<<16:
		return 2
	}
	return 1
}

// strideJump is the stride at or above which the build abandons rolling
// and hashes each anchor from scratch: re-initializing costs ~p/8
// unrolled steps per anchor, rolling costs one step per skipped byte, so
// the jump wins once stride reaches a chunk width.
const strideJump = 8

// tableBitsFor sizes the fingerprint table for the number of indexed
// anchors: the smallest power of two holding one slot per anchor (load
// factor <= 1, the same density the fixed default gave the largest
// corpus inputs), clamped to [10, maxBits]. A 64 KiB reference now probes
// a 512 KiB table instead of the fixed 2 MiB one — small enough to stay
// L2-resident, which the per-byte lookup in scanRange feels directly.
//
//ipvet:allocfree
func tableBitsFor(maxBits uint, indexed int) uint {
	bits := uint(10)
	for bits < maxBits && indexed > 1<<bits {
		bits++
	}
	return bits
}

// tableParams derives the (stride, table bits) pair for one reference
// length. Linear and Parallel share this derivation, so for equal inputs
// they build byte-identical tables and compression differences can come
// only from segment seams.
//
//ipvet:allocfree
func (l *Linear) tableParams(refLen int) (stride int, bits uint) {
	nseeds := refLen - l.seedLen + 1
	stride = strideFor(nseeds)
	indexed := (nseeds + stride - 1) / stride
	return stride, tableBitsFor(l.tableBits, indexed)
}

// krHasher computes rolling hashes of p-byte windows. It is a value type:
// hashers live on the differencer's stack frame rather than the heap.
type krHasher struct {
	p    int
	pow  uint64 // krBase^(p-1)
	hash uint64
}

//ipvet:allocfree
func newKRHasher(p int) krHasher {
	pow := uint64(1)
	for k := 0; k < p-1; k++ {
		pow *= krBase
	}
	return krHasher{p: p, pow: pow}
}

// init computes the hash of window b (len must be p).
//
//ipvet:allocfree
func (h *krHasher) init(b []byte) uint64 {
	h.hash = krHash(b)
	return h.hash
}

// roll slides the window one byte: drop out, take in.
//
//ipvet:allocfree
func (h *krHasher) roll(out, in byte) uint64 {
	h.hash = (h.hash-uint64(out)*h.pow)*krBase + uint64(in)
	return h.hash
}

// krTable maps fingerprint buckets to the first reference offset whose
// seed hashed there. Entries are generation-tagged — the high 32 bits hold
// the generation that wrote the entry, the low 32 bits the offset plus one
// — so reusing the table for a new diff is a generation bump, not a
// multi-megabyte clear. (BENCH_convert.json showed the reuse path benching
// *slower* than one-shot because prepare cleared the whole table each
// call; with tagging, stale entries are invalidated for free.)
//
// The packed layout also gives the parallel differ a lock-free build: a
// single compare-and-swap installs generation and offset together, with
// min-offset-wins preserving the sequential first-occurrence semantics.
type krTable struct {
	entries []uint64
	gen     uint32
	mask    uint64
}

// prepare sizes the table for 2^bits entries and advances the generation,
// invalidating all previous entries without touching them.
func (t *krTable) prepare(bits uint) {
	size := 1 << bits
	if len(t.entries) != size {
		t.entries = make([]uint64, size)
		t.gen = 1
		t.mask = uint64(size) - 1
		return
	}
	t.gen++
	if t.gen == 0 {
		// Generation wrap: ancient entries could alias the new generation,
		// so pay the one clear per 2^32 diffs. prepare runs strictly before
		// any builder goroutine starts, so the plain element writes cannot
		// race the shards' atomic CAS traffic.
		clear(t.entries) //ipvet:ignore atomicmix -- single-threaded phase, no concurrent builders yet
		t.gen = 1
	}
}

// insert records offset r for bucket b if the bucket is empty this
// generation (first occurrence wins, matching the left-to-right scan).
// The entries are CAS-written by insertMin when the parallel differ
// shares a table, so even the sequential path goes through atomics —
// free on 64-bit hardware, and it keeps the two paths raceless by
// construction rather than by call-site discipline.
//
//ipvet:allocfree
func (t *krTable) insert(b uint64, r int) {
	if uint32(atomic.LoadUint64(&t.entries[b])>>32) != t.gen {
		atomic.StoreUint64(&t.entries[b], uint64(t.gen)<<32|uint64(uint32(r+1)))
	}
}

// lookup returns the stored offset for bucket b, if current.
//
//ipvet:allocfree
func (t *krTable) lookup(b uint64) (int, bool) {
	e := atomic.LoadUint64(&t.entries[b])
	if uint32(e>>32) != t.gen {
		return 0, false
	}
	return int(uint32(e)) - 1, true
}

// insertMin atomically records offset r for bucket b, keeping the smallest
// offset per generation. Concurrent builders over disjoint reference
// shards converge on exactly the table the sequential insert produces.
//
//ipvet:allocfree
func (t *krTable) insertMin(b uint64, r int) {
	want := uint64(t.gen)<<32 | uint64(uint32(r+1))
	for {
		cur := atomic.LoadUint64(&t.entries[b])
		if uint32(cur>>32) == t.gen && uint32(cur) <= uint32(r+1) {
			return
		}
		if atomic.CompareAndSwapUint64(&t.entries[b], cur, want) {
			return
		}
	}
}

// linearState is one diff's working memory: the fingerprint table and the
// emitter. States are pooled per Linear instance. The table is sized per
// diff by tableParams, so scan prepares it; only the emitter resets here.
type linearState struct {
	table krTable
	e     emitter
}

// prepare resets the emitter for a fresh diff.
//
//ipvet:allocfree
func (st *linearState) prepare() {
	st.e.reset()
}

// Diff implements Algorithm.
func (l *Linear) Diff(ref, version []byte) (*delta.Delta, error) {
	st, _ := l.pool.Get().(*linearState)
	if st == nil {
		st = &linearState{}
	}
	st.prepare()
	l.scan(st, ref, version)
	d := &delta.Delta{
		RefLen:     int64(len(ref)),
		VersionLen: int64(len(version)),
		Commands:   st.e.finish(),
	}
	l.pool.Put(st)
	l.record(ref, version, len(d.Commands))
	return d, nil
}

// record updates the volume counters after a completed diff.
//
//ipvet:allocfree
func (l *Linear) record(ref, version []byte, ncmds int) {
	if l.met == nil {
		return
	}
	l.met.diffs.Inc()
	l.met.refBytes.Add(int64(len(ref)))
	l.met.versionBytes.Add(int64(len(version)))
	l.met.commands.Add(int64(ncmds))
}

// scan runs the differencing pass, emitting commands into st.e.
//
//ipvet:allocfree
func (l *Linear) scan(st *linearState, ref, version []byte) {
	if len(version) == 0 {
		return
	}
	p := l.seedLen
	if len(ref) < p || len(version) < p {
		// Too short to seed any match: emit the version as a single add.
		st.e.literal(version)
		return
	}

	stride, bits := l.tableParams(len(ref))
	st.table.prepare(bits) //ipvet:ignore allocfree -- sizing is amortized: same-shape inputs reuse the table allocation
	var span obs.Span
	if l.met != nil {
		span = l.met.tableStage.Start()
		if stride > 1 {
			l.met.strided.Inc()
		}
	}
	buildTable(&st.table, ref, p, 0, len(ref)-p+1, stride)
	if l.met != nil {
		span.End()
		span = l.met.emitStage.Start()
	}
	scanRange(&st.table, &st.e, ref, version, p, 0, len(version), 0)
	if l.met != nil {
		span.End()
	}
}

// alignUp returns the first multiple of stride at or after r. Anchors are
// aligned to global stride multiples, not shard-local ones, so sharded
// builders index exactly the position set the sequential build indexes.
//
//ipvet:allocfree
func alignUp(r, stride int) int {
	if rem := r % stride; rem != 0 {
		return r + stride - rem
	}
	return r
}

// buildTable indexes the reference seeds whose start offsets lie in
// [rlo, rhi) and are multiples of stride: table[h] maps the fingerprint
// bucket h to the anchor's first occurrence. Sequential first-wins
// inserts here, atomic min-wins in buildTableShard when reference shards
// build concurrently — over the same position set the results are
// identical. Below strideJump the hash still rolls across every position
// (one cheap step per skipped byte); at or above it each anchor is
// hashed from scratch with the unrolled kernel and the skipped bytes are
// never touched.
//
//ipvet:allocfree
func buildTable(t *krTable, ref []byte, p, rlo, rhi, stride int) {
	if rlo >= rhi {
		return
	}
	if stride >= strideJump {
		for r := alignUp(rlo, stride); r < rhi; r += stride {
			t.insert(krHash(ref[r:r+p])&t.mask, r)
		}
		return
	}
	rh := newKRHasher(p)
	rh.init(ref[rlo : rlo+p])
	next := alignUp(rlo, stride)
	for r := rlo; ; r++ {
		if r == next {
			t.insert(rh.hash&t.mask, r)
			next += stride
		}
		if r+1 >= rhi {
			break
		}
		rh.roll(ref[r], ref[r+p])
	}
}

// buildTableShard is buildTable with atomic min-wins inserts, for
// concurrent builders over disjoint [rlo, rhi) reference shards.
//
//ipvet:allocfree
func buildTableShard(t *krTable, ref []byte, p, rlo, rhi, stride int) {
	if rlo >= rhi {
		return
	}
	if stride >= strideJump {
		for r := alignUp(rlo, stride); r < rhi; r += stride {
			t.insertMin(krHash(ref[r:r+p])&t.mask, r)
		}
		return
	}
	rh := newKRHasher(p)
	rh.init(ref[rlo : rlo+p])
	next := alignUp(rlo, stride)
	for r := rlo; ; r++ {
		if r == next {
			t.insertMin(rh.hash&t.mask, r)
			next += stride
		}
		if r+1 >= rhi {
			break
		}
		rh.roll(ref[r], ref[r+p])
	}
}

// scanRange scans version[start:end) against the indexed reference,
// emitting commands into e that cover exactly those bytes. Seed windows
// may read past end (the overlap window of a parallel segment scan —
// capped at len(version)); emitted copies never write past end, and
// backward extension never crosses start, so per-segment outputs
// concatenate into a well-formed delta. minCopy suppresses boundary-capped
// copies shorter than the seed would allow (0 keeps every verified match).
//
//ipvet:allocfree
func scanRange(t *krTable, e *emitter, ref, version []byte, p, start, end, minCopy int) {
	if start >= end {
		return
	}
	v := start
	lit := start // start of the current unmatched literal run
	if v+p > len(version) {
		e.literal(version[lit:end])
		return
	}
	vh := newKRHasher(p)
	vh.init(version[v : v+p])
	for {
		matched := false
		if r, ok := t.lookup(vh.hash & t.mask); ok {
			// Verify: fingerprints collide, bytes decide.
			if bytes.Equal(ref[r:r+p], version[v:v+p]) {
				fwd := p + matchForward(ref, version, r+p, v+p)
				if v+fwd > end {
					fwd = end - v
				}
				back := matchBackward(ref, version, r, v, v-lit)
				if fwd+back >= minCopy {
					// Emit literals preceding the (extended) match.
					e.literal(version[lit : v-back])
					e.copyCmd(int64(r-back), int64(fwd+back))
					v += fwd
					lit = v
					matched = true
				}
			}
		}
		if matched {
			if v >= end || v+p > len(version) {
				break
			}
			vh.init(version[v : v+p])
			continue
		}
		if v+1 >= end || v+1+p > len(version) {
			break
		}
		vh.roll(version[v], version[v+p])
		v++
	}
	e.literal(version[lit:end])
}

// Differ is a reusable linear differencer for single-threaded steady-state
// pipelines: one instance owns the fingerprint table, the emitter, and the
// output delta, so repeated Diff calls perform no heap allocations at all.
// The returned delta is owned by the Differ and valid only until its next
// call; callers that retain results across calls should use (*Linear).Diff
// (whose output is detached) or clone. A Differ is not safe for concurrent
// use — (*Linear).Diff pools its state internally and is.
type Differ struct {
	l   *Linear
	st  linearState
	out delta.Delta
}

// NewDiffer returns a reusable differencer with the given options applied.
func NewDiffer(opts ...LinearOption) *Differ {
	return &Differ{l: NewLinear(opts...)}
}

// Name identifies the algorithm in reports.
func (dr *Differ) Name() string { return dr.l.Name() }

// Diff computes the delta like (*Linear).Diff, into differ-owned storage
// that is reused by — and valid only until — the next call.
func (dr *Differ) Diff(ref, version []byte) (*delta.Delta, error) {
	dr.st.prepare()
	dr.l.scan(&dr.st, ref, version)
	dr.out = delta.Delta{
		RefLen:     int64(len(ref)),
		VersionLen: int64(len(version)),
		Commands:   dr.st.e.finishReuse(),
	}
	dr.l.record(ref, version, len(dr.out.Commands))
	return &dr.out, nil
}
