package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"

	"ipdelta/internal/chunk"
	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
	"ipdelta/internal/inplace"
	"ipdelta/internal/obs"
	"ipdelta/internal/store"
)

// The benchmark-baseline mode (-bench-baseline) measures the conversion
// pipeline's steady-state hot paths with testing.Benchmark and emits a
// machine-readable JSON document (-baseline-out, BENCH_convert.json by
// convention). Committing the file alongside a perf-sensitive change gives
// reviewers and CI a before/after record of ns/op and allocs/op without
// re-running anything.

// baselineResult is one benchmark's measurement.
type baselineResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// baselineStage summarizes one observed pipeline stage from the metrics
// registry attached to the instrumented runs.
type baselineStage struct {
	Name       string  `json:"name"`
	Count      int64   `json:"count"`
	MeanNanos  float64 `json:"mean_nanos"`
	TotalNanos int64   `json:"total_nanos"`
}

// baselineDoc is the emitted document.
type baselineDoc struct {
	Environment struct {
		GoVersion   string `json:"go_version"`
		GOOS        string `json:"goos"`
		GOARCH      string `json:"goarch"`
		NumCPU      int    `json:"num_cpu"`
		GOMAXPROCS  int    `json:"gomaxprocs"`
		DiffWorkers []int  `json:"diff_workers"`
		InputBytes  int    `json:"input_bytes"`
		Seed        int64  `json:"seed"`
	} `json:"environment"`
	Results []baselineResult `json:"results"`
	// Metrics carries selected counters from an instrumented convert run
	// (cycle-break counts per policy, converted copies/bytes), proving the
	// observability layer sees the same structure the stats report.
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// Stages carries per-stage timing aggregates from the same run.
	Stages []baselineStage `json:"stages,omitempty"`
}

// scalingWorkers returns the worker counts for the diff scaling curve:
// powers of two from 1 up to numCPU, always ending at numCPU itself, so
// the emitted document shows where parallel speedup flattens on this
// machine and the last row is directly comparable to diff.Auto's pick.
func scalingWorkers(numCPU int) []int {
	if numCPU < 1 {
		numCPU = 1
	}
	var ws []int
	for w := 1; w < numCPU; w *= 2 {
		ws = append(ws, w)
	}
	return append(ws, numCPU)
}

// makeChain builds depth related version images for the store benchmarks:
// each release splices fresh content into a copy of its predecessor, so the
// deltas stay small and realistic.
func makeChain(size, depth int, seed int64) [][]byte {
	p := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: size, ChangeRate: 0.05, Seed: seed})
	chain := [][]byte{p.Ref}
	cur := p.Ref
	for k := 1; k < depth; k++ {
		fresh := corpus.Generate(corpus.PairSpec{Profile: corpus.Binary, Size: size, ChangeRate: 0.05, Seed: seed + int64(k)})
		v := append([]byte(nil), cur...)
		splice := len(v) / 6
		off := (k * 131) % (len(v) - splice)
		copy(v[off:off+splice], fresh.Version[:splice])
		chain = append(chain, v)
		cur = v
	}
	return chain
}

// blockyChurn returns a copy of base with roughly rate of its bytes
// overwritten in contiguous 32 KiB blocks at scattered offsets — the
// localized-edit shape chunk dedup exploits. (Scattered single-byte
// edits at the same rate would touch nearly every chunk and defeat any
// chunk-granular matcher; real version churn is blocky.)
func blockyChurn(base []byte, rate float64, seed int64) []byte {
	out := append([]byte(nil), base...)
	rng := rand.New(rand.NewSource(seed))
	const block = 32 << 10
	if len(out) <= block {
		rng.Read(out)
		return out
	}
	n := int(float64(len(base)) * rate / block)
	if n < 1 {
		n = 1
	}
	for k := 0; k < n; k++ {
		off := rng.Intn(len(out) - block)
		rng.Read(out[off : off+block])
	}
	return out
}

// sizeLabel renders a byte count as a row-name suffix.
func sizeLabel(n int) string {
	if n >= 1<<20 && n%(1<<20) == 0 {
		return fmt.Sprintf("%dMiB", n>>20)
	}
	return fmt.Sprintf("%dKiB", n>>10)
}

// measure runs fn under testing.Benchmark and records the result. bytes is
// the per-iteration payload for MB/s (0 to omit).
func (doc *baselineDoc) measure(name string, bytes int64, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	res := baselineResult{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if bytes > 0 && r.T > 0 {
		res.MBPerSec = float64(bytes) * float64(r.N) / r.T.Seconds() / 1e6
	}
	doc.Results = append(doc.Results, res)
}

// addRegistry folds the registry's counters and stage histograms into the
// document.
func (doc *baselineDoc) addRegistry(reg *obs.Registry) {
	snap := reg.Snapshot()
	if len(snap.Counters) > 0 {
		doc.Metrics = snap.Counters
	}
	for name, h := range snap.Histograms {
		st := baselineStage{Name: name, Count: h.Count, TotalNanos: h.Sum}
		if h.Count > 0 {
			st.MeanNanos = float64(h.Sum) / float64(h.Count)
		}
		doc.Stages = append(doc.Stages, st)
	}
	sort.Slice(doc.Stages, func(i, j int) bool { return doc.Stages[i].Name < doc.Stages[j].Name })
}

// runBaseline measures the pipeline and writes the JSON document to
// outPath, rendering a summary table to out.
func runBaseline(out io.Writer, outPath string, quick bool, seed int64) error {
	size := 256 << 10
	batchJobs := 16
	if quick {
		size = 64 << 10
		batchJobs = 4
	}
	p := corpus.Generate(corpus.PairSpec{
		Profile:    corpus.Binary,
		Size:       size,
		ChangeRate: 0.08,
		Seed:       seed,
	})
	vbytes := int64(len(p.Version))

	l := diff.NewLinear()
	d, err := l.Diff(p.Ref, p.Version)
	if err != nil {
		return fmt.Errorf("bench-baseline: diff: %w", err)
	}

	parallelWorkers := scalingWorkers(runtime.NumCPU())

	doc := &baselineDoc{}
	doc.Environment.GoVersion = runtime.Version()
	doc.Environment.GOOS = runtime.GOOS
	doc.Environment.GOARCH = runtime.GOARCH
	doc.Environment.NumCPU = runtime.NumCPU()
	doc.Environment.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Environment.DiffWorkers = parallelWorkers
	doc.Environment.InputBytes = size
	doc.Environment.Seed = seed

	doc.measure("convert/one-shot", vbytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := inplace.Convert(d, p.Ref); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The reuse benchmark runs with an observer attached: stage timings and
	// structural counters land in the emitted document, and the allocs/op
	// column doubles as proof that observation stays allocation-free.
	reg := obs.NewRegistry()
	cv := inplace.NewConverter(inplace.WithObserver(reg))
	doc.measure("convert/reuse", vbytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cv.Convert(d, p.Ref); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.measure("crwi/build", vbytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cv.BuildCRWI(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.measure("diff/one-shot", vbytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := l.Diff(p.Ref, p.Version); err != nil {
				b.Fatal(err)
			}
		}
	})
	dr := diff.NewDiffer()
	doc.measure("diff/reuse", vbytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dr.Diff(p.Ref, p.Version); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Parallel diff scaling curve: worker counts 1, 2, 4, ... up to this
	// machine's core count. The rows are only meaningful relative to the
	// environment block's num_cpu — on a box with fewer cores than an old
	// document's, -compare skips them rather than reading noise.
	for _, w := range parallelWorkers {
		pd := diff.NewParallelDiffer(w)
		doc.measure(fmt.Sprintf("diff/parallel/%d", w), vbytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pd.Diff(p.Ref, p.Version); err != nil {
					b.Fatal(err)
				}
			}
		})
		pd.Close()
	}
	// The self-selecting engine on the same input: should track whichever
	// of diff/reuse and diff/parallel/NumCPU wins on this machine.
	ad := diff.NewAutoDiffer()
	doc.measure("diff/auto", vbytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ad.Diff(p.Ref, p.Version); err != nil {
				b.Fatal(err)
			}
		}
	})
	ad.Close()

	// Chunked dedup tier: content-defined split and ingest throughput,
	// then the recipe-diff fast path against the full-image reuse differ
	// on the same 5%-blocky-churn input at growing sizes. Recipes are
	// pre-ingested — the recipe rows measure diffing versions the store
	// already holds, the serving steady state; ingest cost is its own row.
	// The chunk store and recipe differ share the metrics registry, so the
	// dedup hit/miss/bytes-saved counters land in the document's metrics.
	chunkSizes := []int{1 << 20, 16 << 20, 256 << 20}
	if quick {
		chunkSizes = []int{1 << 20}
	}
	ck, err := chunk.NewChunker(chunk.Params{})
	if err != nil {
		return fmt.Errorf("bench-baseline: %w", err)
	}
	rd := diff.NewRecipeDiffer(diff.WithRecipeObserver(reg))
	for _, csz := range chunkSizes {
		oldImg := make([]byte, csz)
		rand.New(rand.NewSource(seed)).Read(oldImg)
		newImg := blockyChurn(oldImg, 0.05, seed+1)
		label := sizeLabel(csz)

		doc.measure("chunk/split/"+label, int64(csz), func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				ck.Split(oldImg, func(c []byte) { sink += len(c) })
			}
			_ = sink
		})
		doc.measure("chunk/ingest/"+label, int64(csz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fresh := chunk.NewStore()
				fresh.IngestAll(ck, oldImg)
			}
		})

		cstore := chunk.NewStore(chunk.WithObserver(reg))
		ro := cstore.IngestAll(ck, oldImg)
		rn := cstore.IngestAll(ck, newImg)
		doc.measure("recipe/diff/"+label, int64(csz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rd.DiffRecipes(ro, rn, cstore); err != nil {
					b.Fatal(err)
				}
			}
		})
		doc.measure("diff/full/"+label, int64(csz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dr.Diff(oldImg, newImg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Store serving path: materializing the head of a delta chain cold
	// (full replay per request) versus through the materialization cache
	// (steady-state hits after one replay).
	chainDepth := 32
	if quick {
		chainDepth = 8
	}
	chain := makeChain(size/4, chainDepth, seed)
	head := len(chain) - 1
	headBytes := int64(len(chain[head]))
	cold := store.New(chain[0])
	cached := store.New(chain[0], store.WithCache(8))
	for _, v := range chain[1:] {
		if _, err := cold.AppendVersion(v); err != nil {
			return fmt.Errorf("bench-baseline: chain: %w", err)
		}
		if _, err := cached.AppendVersion(v); err != nil {
			return fmt.Errorf("bench-baseline: chain: %w", err)
		}
	}
	doc.measure(fmt.Sprintf("store/cold/%d", chainDepth), headBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cold.Version(head); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, err := cached.Version(head); err != nil {
		return fmt.Errorf("bench-baseline: warm cache: %w", err)
	}
	doc.measure(fmt.Sprintf("store/cached/%d", chainDepth), headBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cached.Version(head); err != nil {
				b.Fatal(err)
			}
		}
	})

	jobs := make([]inplace.Job, 0, batchJobs)
	var batchBytes int64
	for k := 0; k < batchJobs; k++ {
		jp := corpus.Generate(corpus.PairSpec{
			Profile:    corpus.Binary,
			Size:       size / 4,
			ChangeRate: 0.08,
			Seed:       seed + int64(k),
		})
		jd, err := l.Diff(jp.Ref, jp.Version)
		if err != nil {
			return fmt.Errorf("bench-baseline: batch diff %d: %w", k, err)
		}
		jobs = append(jobs, inplace.Job{Delta: jd, Ref: jp.Ref})
		batchBytes += int64(len(jp.Version))
	}
	doc.measure(fmt.Sprintf("batch/%d", batchJobs), batchBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range inplace.ConvertBatch(jobs, 0) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})

	// Fold the shared registry in once, at the end: the convert stages and
	// the chunk tier's dedup counters all report through reg.
	doc.addRegistry(reg)

	f, err := os.Create(outPath)
	if err != nil {
		return fmt.Errorf("bench-baseline: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return fmt.Errorf("bench-baseline: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bench-baseline: %w", err)
	}

	fmt.Fprintf(out, "benchmark baseline (%d-byte input, seed %d) -> %s\n", size, seed, outPath)
	fmt.Fprintf(out, "environment: %d CPU, GOMAXPROCS %d, %s %s/%s — parallel rows reflect this parallelism\n\n",
		doc.Environment.NumCPU, doc.Environment.GOMAXPROCS,
		doc.Environment.GoVersion, doc.Environment.GOOS, doc.Environment.GOARCH)
	fmt.Fprintf(out, "%-18s %12s %14s %12s %10s\n", "benchmark", "iters", "ns/op", "allocs/op", "MB/s")
	for _, r := range doc.Results {
		fmt.Fprintf(out, "%-18s %12d %14.0f %12d %10.1f\n",
			r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp, r.MBPerSec)
	}
	return nil
}
