package ipdelta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFacadeQuickstart(t *testing.T) {
	old := []byte("the quick brown fox jumps over the lazy dog; the quick brown fox again")
	new_ := []byte("the slow brown fox jumps over the lazy dog; the quick brown fox again and again")

	d, err := Diff(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Patch(old, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new_) {
		t.Fatal("Patch mismatch")
	}

	ip, st, err := ConvertInPlace(d, old)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("nil stats")
	}
	buf := make([]byte, ip.InPlaceBufLen())
	copy(buf, old)
	if err := PatchInPlace(buf, ip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:ip.VersionLen], new_) {
		t.Fatal("PatchInPlace mismatch")
	}
}

func TestPatchInPlaceRejectsUnsafeDelta(t *testing.T) {
	// A half-swap delta violates Equation 2; the facade must refuse it.
	d := &Delta{
		RefLen:     8,
		VersionLen: 8,
		Commands: []Command{
			NewCopy(4, 0, 4),
			NewCopy(0, 4, 4),
		},
	}
	buf := []byte("AAAABBBB")
	if err := PatchInPlace(buf, d); err == nil {
		t.Fatal("unsafe delta accepted")
	}
	if string(buf) != "AAAABBBB" {
		t.Fatal("buffer modified despite rejection")
	}
}

func TestFacadeEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	old := make([]byte, 4096)
	rng.Read(old)
	new_ := append([]byte(nil), old...)
	copy(new_[1024:2048], old[2048:3072])

	ip, _, err := DiffInPlace(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Encode(&buf, ip, FormatCompact)
	if err != nil {
		t.Fatal(err)
	}
	if size, err := EncodedSize(ip, FormatCompact); err != nil || size != n {
		t.Fatalf("EncodedSize = %d, %v; Encode wrote %d", size, err, n)
	}
	got, f, err := Decode(&buf)
	if err != nil || f != FormatCompact {
		t.Fatalf("Decode: %v %v", f, err)
	}
	out, err := Patch(old, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, new_) {
		t.Fatal("round trip mismatch")
	}
}

func TestFacadePolicies(t *testing.T) {
	if ConstantTime.Name() != "constant-time" || LocallyMinimum.Name() != "locally-minimum" {
		t.Fatal("policy names wrong")
	}
	old := []byte("AAAABBBBCCCCDDDD")
	new_ := []byte("BBBBAAAADDDDCCCC") // two swaps: two cycles
	d, err := Diff(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{ConstantTime, LocallyMinimum} {
		ip, _, err := ConvertInPlaceWithPolicy(d, old, p)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, ip.InPlaceBufLen())
		copy(buf, old)
		if err := PatchInPlace(buf, ip); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:ip.VersionLen], new_) {
			t.Fatalf("%s: wrong result", p.Name())
		}
	}
}

func TestFacadeGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	old := make([]byte, 8192)
	rng.Read(old)
	new_ := append([]byte(nil), old[4096:]...)
	new_ = append(new_, old[:4096]...)
	d, err := DiffGreedy(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Patch(old, d)
	if err != nil || !bytes.Equal(got, new_) {
		t.Fatal("greedy round trip failed")
	}
}

func TestFacadeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	old := make([]byte, 64<<10)
	rng.Read(old)
	new_ := append([]byte(nil), old[32<<10:]...)
	new_ = append(new_, old[:32<<10]...)
	for _, workers := range []int{1, 4} {
		d, err := DiffParallel(old, new_, workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Patch(old, d)
		if err != nil || !bytes.Equal(got, new_) {
			t.Fatalf("parallel round trip failed with %d workers", workers)
		}
	}
}

// TestFacadeQuickEndToEnd is the whole-pipeline property test at the public
// API level: diff → convert → encode → decode → patch in place == version.
func TestFacadeQuickEndToEnd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		old := make([]byte, rng.Intn(8192)+16)
		rng.Read(old)
		new_ := append([]byte(nil), old...)
		// random block swap + edits
		if len(new_) > 64 {
			a, b := rng.Intn(len(new_)/2), len(new_)/2+rng.Intn(len(new_)/2)
			n := rng.Intn(len(new_) / 4)
			for k := 0; k < n && b+k < len(new_); k++ {
				new_[a+k], new_[b+k] = new_[b+k], new_[a+k]
			}
		}
		for k := 0; k < rng.Intn(10); k++ {
			new_[rng.Intn(len(new_))] = byte(rng.Intn(256))
		}

		ip, _, err := DiffInPlace(old, new_)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, ip, FormatCompact); err != nil {
			return false
		}
		dec, _, err := Decode(&buf)
		if err != nil {
			return false
		}
		work := make([]byte, dec.InPlaceBufLen())
		copy(work, old)
		if err := PatchInPlace(work, dec); err != nil {
			return false
		}
		return bytes.Equal(work[:dec.VersionLen], new_)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeScratchBudget(t *testing.T) {
	old := []byte("AAAABBBB")
	new_ := []byte("BBBBAAAA")
	d, err := Diff(old, new_)
	if err != nil {
		t.Fatal(err)
	}
	ip, st, err := ConvertInPlaceScratch(d, old, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.StashedCopies == 0 && st.ConvertedCopies == 0 {
		t.Skip("differencer emitted a cycle-free delta for the swap")
	}
	if ip.ScratchRequired() > 8 {
		t.Fatalf("scratch required %d > budget", ip.ScratchRequired())
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, ip, FormatScratch); err != nil {
		t.Fatal(err)
	}
	got, f, err := Decode(&buf)
	if err != nil || f != FormatScratch {
		t.Fatalf("decode: %v %v", f, err)
	}
	out, err := Patch(old, got)
	if err != nil || !bytes.Equal(out, new_) {
		t.Fatalf("patch: %q %v", out, err)
	}
}
