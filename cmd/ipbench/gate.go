package main

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"ipdelta/internal/corpus"
	"ipdelta/internal/diff"
)

// The scaling-gate mode (-scaling-gate) measures the diff scaling curve on
// the current machine and fails (non-zero exit) when the parallel engine
// at full core count, or the self-selecting engine, loses to the
// sequential reuse differencer by more than -gate-threshold. Unlike
// -compare it needs no committed baseline — both sides are measured in
// the same process on the same input, so CI can run it on any runner and
// the verdict reflects that runner's parallelism, not the committer's.

// errScalingGate marks a gate failure so main can exit non-zero.
type errScalingGate struct{ msg string }

func (e errScalingGate) Error() string { return e.msg }

// gateRow is one measured engine configuration.
type gateRow struct {
	name string
	fn   func(b *testing.B)
	ns   float64
}

// measureRows benchmarks every row three times in round-robin order and
// keeps each row's minimum. Interleaving matters: on a busy or thermally
// drifting runner, measuring each row once in sequence folds machine
// drift into the between-row comparison, which is exactly what the gate
// compares.
func measureRows(rows []gateRow) {
	for round := 0; round < 3; round++ {
		for i := range rows {
			r := testing.Benchmark(rows[i].fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if round == 0 || ns < rows[i].ns {
				rows[i].ns = ns
			}
		}
	}
}

// runScalingGate measures diff/reuse, diff/parallel/1..NumCPU, and
// diff/auto on one input, renders the curve, and enforces two bounds:
// parallel at full core count must not be more than threshold slower than
// sequential reuse, and auto must not be more than threshold slower than
// the better of the two.
func runScalingGate(out io.Writer, threshold float64, quick bool, seed int64) error {
	size := 256 << 10
	if quick {
		size = 64 << 10
	}
	p := corpus.Generate(corpus.PairSpec{
		Profile:    corpus.Binary,
		Size:       size,
		ChangeRate: 0.08,
		Seed:       seed,
	})
	numCPU := runtime.NumCPU()
	fmt.Fprintf(out, "diff scaling gate: %d-byte input, %d CPU, GOMAXPROCS %d, threshold %+.0f%%\n\n",
		size, numCPU, runtime.GOMAXPROCS(0), threshold*100)

	var rows []gateRow
	dr := diff.NewDiffer()
	rows = append(rows, gateRow{name: "diff/reuse", fn: func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dr.Diff(p.Ref, p.Version); err != nil {
				b.Fatal(err)
			}
		}
	}})
	for _, w := range scalingWorkers(numCPU) {
		pd := diff.NewParallelDiffer(w)
		defer pd.Close()
		rows = append(rows, gateRow{name: fmt.Sprintf("diff/parallel/%d", w), fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pd.Diff(p.Ref, p.Version); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}
	ad := diff.NewAutoDiffer()
	defer ad.Close()
	rows = append(rows, gateRow{name: "diff/auto", fn: func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ad.Diff(p.Ref, p.Version); err != nil {
				b.Fatal(err)
			}
		}
	}})

	measureRows(rows)
	seqNs := rows[0].ns
	parNs := rows[len(rows)-2].ns // diff/parallel/NumCPU
	autoNs := rows[len(rows)-1].ns

	fmt.Fprintf(out, "%-18s %14s %10s\n", "benchmark", "ns/op", "vs reuse")
	for _, r := range rows {
		fmt.Fprintf(out, "%-18s %14.0f %+9.1f%%\n", r.name, r.ns, (r.ns/seqNs-1)*100)
	}

	var failures []string
	switch {
	case numCPU == 1:
		// With one processor there is no parallelism to win with:
		// diff/parallel/1 is the parallel machinery's pure overhead, and
		// failing on it would make the gate unrunnable on small boxes. The
		// auto bound below still applies — auto must dodge that overhead.
		fmt.Fprintf(out, "\nnote: single CPU — the parallel-vs-reuse bound is skipped\n")
	case parNs > seqNs*(1+threshold):
		failures = append(failures, fmt.Sprintf(
			"diff/parallel/%d is %.1f%% slower than diff/reuse (allowed %.0f%%)",
			numCPU, (parNs/seqNs-1)*100, threshold*100))
	}
	best := seqNs
	if parNs < best {
		best = parNs
	}
	if autoNs > best*(1+threshold) {
		failures = append(failures, fmt.Sprintf(
			"diff/auto is %.1f%% slower than the best hand-picked engine (allowed %.0f%%)",
			(autoNs/best-1)*100, threshold*100))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "\nFAIL: %s\n", f)
		}
		return errScalingGate{msg: fmt.Sprintf("%d scaling bound(s) violated", len(failures))}
	}
	fmt.Fprintf(out, "\nscaling gate passed\n")
	return nil
}
