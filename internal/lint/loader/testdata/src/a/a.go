// Package a is the dependency half of the overlay-importer fixture.
package a

// Answer is imported by package b.
func Answer() int { return 42 }
