// Test package for the atomicmix analyzer: field- and element-granular
// taint, plain reads and writes with their atomic.Load/Store rewrites,
// the clear special case, and the header/length operations that touch
// different memory and stay clean.
package counters

import "sync/atomic"

type Stats struct {
	hits  uint64
	total int64
	name  string
	slots []uint64
}

// Bump is the atomic side: it taints hits and total at field granularity.
func (s *Stats) Bump() {
	atomic.AddUint64(&s.hits, 1)
	atomic.AddInt64(&s.total, 1)
}

// Publish taints the slots elements (not the slice header).
func (s *Stats) Publish(i int, v uint64) {
	atomic.StoreUint64(&s.slots[i], v)
}

// Plain read of a tainted field; the fix wraps it in atomic.LoadUint64.
func (s *Stats) Snapshot() uint64 {
	return s.hits // want `field hits is accessed with sync/atomic elsewhere but read plainly here`
}

// Plain write of a tainted field; the fix rewrites the assignment to
// atomic.StoreUint64.
func (s *Stats) ResetHits() {
	s.hits = 0 // want `field hits is accessed with sync/atomic elsewhere but written plainly here`
}

// Element reads and writes under element taint. The double-quoted want
// form passes through strconv.Unquote, escaping the regex metacharacters
// in the slots[] display name.
func (s *Stats) ReadSlot(i int) uint64 {
	return s.slots[i] // want "field slots\\[\\] is accessed with sync/atomic elsewhere but read plainly here"
}

func (s *Stats) WriteSlot(i int, v uint64) {
	s.slots[i] = v // want `field slots\[\] is accessed with sync/atomic elsewhere but written plainly here`
}

// clear writes every element, so element taint flags it; there is no
// mechanical atomic rewrite for it.
func (s *Stats) Wipe() {
	clear(s.slots) // want `clear writes elements of slots plainly`
}

// Header and length operations touch the slice header, not the elements:
// no diagnostics.
func (s *Stats) Resize(n int) {
	if len(s.slots) < n {
		s.slots = make([]uint64, n)
	}
}

// name is never accessed atomically, so plain access is fine.
func (s *Stats) Name() string {
	return s.name
}

// An analyzer-scoped suppression silences the finding (and with it the
// fix).
func (s *Stats) DebugHits() uint64 {
	return s.hits //ipvet:ignore atomicmix -- test-only snapshot under the harness's stop-the-world
}
