package diff

import (
	"bytes"

	"ipdelta/internal/delta"
)

// Blockwise is a fixed-block differencer in the rsync tradition: the
// reference is cut into aligned blocks whose hashes index a table, and the
// version is scanned with a rolling window that may match any aligned
// reference block. It represents the block-granularity techniques the
// paper's related work contrasts with byte-granular differencing: faster
// and simpler, but unable to exploit matches shorter than a block and
// slightly worse around insertion boundaries.
type Blockwise struct {
	blockSize int
}

// BlockwiseOption customizes a Blockwise differencer.
type BlockwiseOption func(*Blockwise)

// WithBlockSize sets the block granularity (default 512, minimum 16).
func WithBlockSize(n int) BlockwiseOption {
	return func(b *Blockwise) {
		if n < 16 {
			n = 16
		}
		b.blockSize = n
	}
}

// NewBlockwise returns a blockwise differencer.
func NewBlockwise(opts ...BlockwiseOption) *Blockwise {
	b := &Blockwise{blockSize: 512}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Name implements Algorithm.
func (b *Blockwise) Name() string { return "blockwise" }

// Diff implements Algorithm.
func (b *Blockwise) Diff(ref, version []byte) (*delta.Delta, error) {
	d := &delta.Delta{RefLen: int64(len(ref)), VersionLen: int64(len(version))}
	if len(version) == 0 {
		return d, nil
	}
	bs := b.blockSize
	if len(ref) < bs || len(version) < bs {
		return Null{}.Diff(ref, version)
	}

	// Index aligned reference blocks: hash -> block index + 1 (chained by
	// overwrite; the last aligned occurrence wins, which is fine since all
	// occurrences carry identical bytes once verified).
	nBlocks := len(ref) / bs
	table := make(map[uint64]int32, nBlocks)
	rh := newKRHasher(bs)
	for blk := 0; blk < nBlocks; blk++ {
		at := blk * bs
		h := rh.init(ref[at : at+bs])
		table[h] = int32(blk) + 1
	}

	e := &emitter{}
	vh := newKRHasher(bs)
	vh.init(version[:bs])
	v := 0
	lit := 0
	for {
		matched := false
		if cand, ok := table[vh.hash]; ok {
			blk := int(cand) - 1
			at := blk * bs
			if bytes.Equal(ref[at:at+bs], version[v:v+bs]) {
				// Extend across consecutive aligned blocks.
				n := bs
				for {
					nextBlk := blk + n/bs
					nextAt := nextBlk * bs
					if nextAt+bs > len(ref) || v+n+bs > len(version) {
						break
					}
					if !bytes.Equal(ref[nextAt:nextAt+bs], version[v+n:v+n+bs]) {
						break
					}
					n += bs
				}
				e.literal(version[lit:v])
				e.copyCmd(int64(at), int64(n))
				v += n
				lit = v
				matched = true
			}
		}
		if matched {
			if v+bs > len(version) {
				break
			}
			vh.init(version[v : v+bs])
			continue
		}
		if v+bs >= len(version) {
			break
		}
		vh.roll(version[v], version[v+bs])
		v++
	}
	e.literal(version[lit:])
	d.Commands = e.finish()
	return d, nil
}
