package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FromFiles loads real version pairs from a directory, so the experiment
// harness can run the paper's evaluation on user-supplied software instead
// of the synthetic corpus. Two layouts are accepted:
//
//   - flat pairs: files named <name>.old and <name>.new form one pair;
//   - version chains: files named <name>.v<k> (k = 0,1,2,…) form a pair
//     per consecutive version.
//
// Pairs are returned sorted by name for determinism.
func FromFiles(dir string) ([]Pair, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	oldFiles := map[string]string{}
	newFiles := map[string]string{}
	chains := map[string]map[int]string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, ".old"):
			oldFiles[strings.TrimSuffix(name, ".old")] = path
		case strings.HasSuffix(name, ".new"):
			newFiles[strings.TrimSuffix(name, ".new")] = path
		default:
			base, ver, ok := splitVersionSuffix(name)
			if !ok {
				continue
			}
			if chains[base] == nil {
				chains[base] = map[int]string{}
			}
			chains[base][ver] = path
		}
	}

	var pairs []Pair
	appendPair := func(name, refPath, versionPath string) error {
		ref, err := os.ReadFile(refPath)
		if err != nil {
			return err
		}
		version, err := os.ReadFile(versionPath)
		if err != nil {
			return err
		}
		pairs = append(pairs, Pair{Name: name, Ref: ref, Version: version})
		return nil
	}
	for base, refPath := range oldFiles {
		versionPath, ok := newFiles[base]
		if !ok {
			return nil, fmt.Errorf("corpus: %s.old has no matching %s.new", base, base)
		}
		if err := appendPair(base, refPath, versionPath); err != nil {
			return nil, err
		}
	}
	for base, versions := range chains {
		var ks []int
		for k := range versions {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for i := 1; i < len(ks); i++ {
			name := fmt.Sprintf("%s.v%d-v%d", base, ks[i-1], ks[i])
			if err := appendPair(name, versions[ks[i-1]], versions[ks[i]]); err != nil {
				return nil, err
			}
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("corpus: no version pairs found in %s (expect *.old/*.new or *.v<N> files)", dir)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	return pairs, nil
}

// splitVersionSuffix parses "<base>.v<k>" names.
func splitVersionSuffix(name string) (base string, ver int, ok bool) {
	dot := strings.LastIndex(name, ".v")
	if dot < 0 {
		return "", 0, false
	}
	digits := name[dot+2:]
	if digits == "" {
		return "", 0, false
	}
	v := 0
	for _, r := range digits {
		if r < '0' || r > '9' {
			return "", 0, false
		}
		v = v*10 + int(r-'0')
	}
	return name[:dot], v, true
}
