// Command iploadgen load-tests an update server over protocol v2: it
// drives conns × streams concurrent device update sessions — every
// session a real device image reconstructed in place over its own
// multiplexed stream — and reports convergence, throughput, and exact
// p50/p99/p999 session latency.
//
// By default the harness spins up an in-process update server on a
// loopback listener, so one binary exercises the full TCP + mux + session
// stack; -server points it at an external updated instead. The -fault-*
// flags wrap every session attempt in a seeded network fault injector, so
// a faulted run is reproducible bit for bit; convergence is still
// expected because the retry ladder resumes interrupted updates and
// degrades to full images.
//
// Usage:
//
//	iploadgen [-server ADDR] [-conns N] [-streams N] [-image-size N]
//	          [-releases N] [-seed N] [-timeout D] [-retries N]
//	          [-fallback-after N] [-fault-seed N] [-fault-rate P]
//	          [-fault-corrupt P] [-fault-drop-after N]
//	          [-metrics-addr ADDR] [-linger D] [-v]
//
// The process exits non-zero unless every session converges, which makes
// it usable as a CI gate directly. With -metrics-addr it serves its
// metrics registry on /metrics (counters, in-flight gauges, and
// ipdelta_loadgen_p{50,99,999}_us latency gauges) during the run and for
// -linger afterwards, so an external check can scrape the percentiles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipdelta/internal/corpus"
	"ipdelta/internal/device"
	"ipdelta/internal/netupdate"
	"ipdelta/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iploadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iploadgen", flag.ContinueOnError)
	server := fs.String("server", "", "external updated address (empty = in-process server)")
	conns := fs.Int("conns", 200, "v2 connections to open")
	streams := fs.Int("streams", 50, "concurrent update streams per connection")
	imageSize := fs.Int("image-size", 4<<10, "release image size in bytes")
	releases := fs.Int("releases", 3, "release history depth (devices start on a random older release)")
	seed := fs.Uint64("seed", 1, "seed for device baselines and workload shuffling")
	var nf netupdate.Flags
	nf.RegisterClient(fs)
	nf.RegisterTransport(fs)
	nf.RegisterFaults(fs)
	metricsAddr := fs.String("metrics-addr", "", "serve the loadgen metrics registry on this HTTP address")
	linger := fs.Duration("linger", 0, "keep serving /metrics this long after the run (for scrapers)")
	verbose := fs.Bool("v", false, "log each failed session (structured, stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *conns <= 0 || *streams <= 0 {
		return errors.New("iploadgen: -conns and -streams must be positive")
	}
	if *releases < 2 {
		return errors.New("iploadgen: need at least 2 releases to have something to update")
	}

	history := makeReleases(*releases, *imageSize, int64(*seed))
	target := history[len(history)-1]
	targetCRC := crc32.ChecksumIEEE(target)

	// The client must be allowed to open -streams concurrent streams per
	// connection; raise the advertised limit when the flag did not.
	if nf.StreamLimit < *streams {
		nf.StreamLimit = *streams
	}

	addr := *server
	if addr == "" {
		srv, err := netupdate.NewServer(history,
			netupdate.WithStreamLimit(nf.StreamLimit),
			netupdate.WithMessageTimeout(nf.Timeout))
		if err != nil {
			return err
		}
		if err := srv.Prewarm(0); err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer l.Close()
		go srv.Serve(l) //nolint:errcheck // returns on listener close
		addr = l.Addr().String()
		fmt.Printf("iploadgen: in-process server on %s (%d releases × %d bytes)\n",
			addr, len(history), len(target))
	}

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer ml.Close()
		hmux := http.NewServeMux()
		hmux.Handle("/metrics", reg)
		fmt.Printf("iploadgen: metrics on http://%s/metrics\n", ml.Addr())
		go http.Serve(ml, hmux) //nolint:errcheck // returns on listener close
	}
	logger := obs.NopLogger()
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	total := *conns * *streams
	fmt.Printf("iploadgen: %d sessions over %d conns × %d streams/conn (fault seed %d, rate %.3f)\n",
		total, *conns, *streams, nf.FaultSeed, nf.FaultRate)

	res, err := drive(addr, *conns, *streams, &nf, history, targetCRC, reg, logger, int64(*seed))
	if err != nil {
		return err
	}
	report(res, total, reg)
	if *linger > 0 {
		fmt.Printf("iploadgen: lingering %v for metric scrapers\n", *linger)
		time.Sleep(*linger)
	}
	if res.converged != total {
		return fmt.Errorf("convergence %d/%d — %d sessions failed", res.converged, total, total-res.converged)
	}
	return nil
}

// makeReleases builds a chained history: each release splices fresh
// firmware-profile content over a sixth of its predecessor.
func makeReleases(n, size int, seed int64) [][]byte {
	base := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: size, ChangeRate: 0, Seed: seed})
	history := [][]byte{base.Ref}
	cur := base.Ref
	for k := 1; k < n; k++ {
		gen := corpus.Generate(corpus.PairSpec{Profile: corpus.Firmware, Size: size, ChangeRate: 0.06, Seed: seed + int64(k)})
		v := append([]byte(nil), cur...)
		splice := len(v) / 6
		if splice == 0 {
			splice = len(v)
		}
		at := (k * 3 * splice) % (len(v) - splice + 1)
		copy(v[at:at+splice], gen.Version[:splice])
		history = append(history, v)
		cur = v
	}
	return history
}

// result aggregates one load run.
type result struct {
	converged  int
	fallbacks  int
	attempts   int64
	bytes      int64
	elapsed    time.Duration
	peak       int64
	latencies  []time.Duration // one per session, unsorted
	firstError string
}

// drive opens the connections and runs every session to completion.
func drive(addr string, conns, streams int, nf *netupdate.Flags, history [][]byte, targetCRC uint32,
	reg *obs.Registry, logger *slog.Logger, seed int64) (*result, error) {

	ctx := context.Background()
	opts := append(nf.Options(), netupdate.WithObserver(reg), netupdate.WithLogger(logger))
	ccs := make([]*netupdate.ClientConn, conns)
	for i := range ccs {
		cc, err := netupdate.Dial(ctx, addr, opts...)
		if err != nil {
			return nil, fmt.Errorf("dial conn %d: %w", i, err)
		}
		defer cc.Close()
		ccs[i] = cc
	}

	client := netupdate.NewClient(opts...)
	total := conns * streams
	res := &result{latencies: make([]time.Duration, total)}

	var (
		mu        sync.Mutex
		inflight  atomic.Int64
		peak      atomic.Int64
		wg        sync.WaitGroup
		sessions  = reg.Counter("ipdelta_loadgen_sessions_total")
		converged = reg.Counter("ipdelta_loadgen_converged_total")
		failed    = reg.Counter("ipdelta_loadgen_failed_total")
		inflightG = reg.Gauge("ipdelta_loadgen_inflight")
	)
	start := time.Now()
	for si := 0; si < total; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			cc := ccs[si/streams]
			// Deterministic per-session workload: baseline release and
			// fault seeds derive from the run seed and session index.
			sseed := uint64(seed) + uint64(si)*0x9E3779B97F4A7C15
			baseline := history[int(sseed%uint64(len(history)-1))]
			flash, err := device.NewFlash(baseline, int64(2*len(history[len(history)-1])))
			if err != nil {
				fail(res, &mu, failed, "flash: "+err.Error())
				return
			}
			dev := device.New(flash, int64(len(baseline)), device.DefaultWorkBufSize)

			attempt := uint64(0)
			dial := func(ctx context.Context) (net.Conn, error) {
				st, err := cc.OpenStream(ctx)
				if err != nil {
					return nil, err
				}
				if !nf.FaultsEnabled() {
					return st, nil
				}
				attempt++
				p := nf.FaultProfile(sseed + attempt)
				return netupdate.NewFlakyConn(st, p), nil
			}

			cur := inflight.Add(1)
			inflightG.Set(inflight.Load())
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			sessions.Inc()
			t0 := time.Now()
			rep, err := client.Run(ctx, dial, dev)
			lat := time.Since(t0)
			inflight.Add(-1)
			inflightG.Set(inflight.Load())

			mu.Lock()
			res.latencies[si] = lat
			res.attempts += int64(rep.Attempts)
			if rep.FellBack {
				res.fallbacks++
			}
			mu.Unlock()
			if err != nil {
				fail(res, &mu, failed, err.Error())
				logger.Warn("session failed", "component", "loadgen", "session", si, "err", err)
				return
			}
			img := dev.Image()
			if crc32.ChecksumIEEE(img) != targetCRC {
				fail(res, &mu, failed, "image mismatch after convergence")
				return
			}
			mu.Lock()
			res.converged++
			res.bytes += rep.Result.DeltaBytes
			mu.Unlock()
			converged.Inc()
		}(si)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	res.peak = peak.Load()
	return res, nil
}

// fail records one failed session (keeping only the first error text).
func fail(res *result, mu *sync.Mutex, failed *obs.Counter, msg string) {
	failed.Inc()
	mu.Lock()
	if res.firstError == "" {
		res.firstError = msg
	}
	mu.Unlock()
}

// report prints the summary and publishes the percentile gauges.
func report(res *result, total int, reg *obs.Registry) {
	lats := append([]time.Duration(nil), res.latencies...)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	p50, p99, p999 := q(0.50), q(0.99), q(0.999)
	reg.Gauge("ipdelta_loadgen_p50_us").Set(p50.Microseconds())
	reg.Gauge("ipdelta_loadgen_p99_us").Set(p99.Microseconds())
	reg.Gauge("ipdelta_loadgen_p999_us").Set(p999.Microseconds())
	reg.Gauge("ipdelta_loadgen_peak_inflight").Set(res.peak)

	sec := res.elapsed.Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	fmt.Printf("iploadgen: converged %d/%d (%.2f%%) in %v — peak %d in flight, %d attempts, %d fallbacks\n",
		res.converged, total, 100*float64(res.converged)/float64(total),
		res.elapsed.Round(time.Millisecond), res.peak, res.attempts, res.fallbacks)
	fmt.Printf("iploadgen: latency p50=%v p99=%v p999=%v\n",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), p999.Round(time.Microsecond))
	fmt.Printf("iploadgen: throughput %.1f sessions/s, %.2f MB/s delta payload\n",
		float64(total)/sec, float64(res.bytes)/sec/1e6)
	if res.firstError != "" {
		fmt.Printf("iploadgen: first failure: %s\n", res.firstError)
	}
}
