package diff

import (
	"sort"

	"ipdelta/internal/delta"
)

// Correcting decorates another differencer with a correction pass, in the
// spirit of the "correcting one-and-a-half-pass" refinement of the linear
// differencing family the paper builds on: regions the first pass emitted
// as literal adds are re-examined with a finer-grained differencer, and
// any copies recovered there replace the literal bytes.
//
// This recovers matches the first pass missed — seeds that straddled an
// edit, matches shorter than the seed length — at a cost proportional to
// the add volume rather than the file size.
type Correcting struct {
	inner     Algorithm
	fine      *Linear
	threshold int64
}

// CorrectingOption customizes a Correcting differencer.
type CorrectingOption func(*Correcting)

// WithThreshold sets the minimum add length worth re-examining
// (default 64 bytes, minimum 16).
func WithThreshold(n int64) CorrectingOption {
	return func(c *Correcting) {
		if n < 16 {
			n = 16
		}
		c.threshold = n
	}
}

// NewCorrecting wraps inner (default linear with default seeds) with a
// fine-grained correction pass (seed length 8).
func NewCorrecting(inner Algorithm, opts ...CorrectingOption) *Correcting {
	if inner == nil {
		inner = NewLinear()
	}
	c := &Correcting{
		inner:     inner,
		fine:      NewLinear(WithSeedLen(8)),
		threshold: 64,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name implements Algorithm.
func (c *Correcting) Name() string { return "correcting" }

// Diff implements Algorithm.
func (c *Correcting) Diff(ref, version []byte) (*delta.Delta, error) {
	d, err := c.inner.Diff(ref, version)
	if err != nil {
		return nil, err
	}
	out := &delta.Delta{RefLen: d.RefLen, VersionLen: d.VersionLen}
	for _, cmd := range d.Commands {
		if cmd.Op != delta.OpAdd || cmd.Length < c.threshold {
			out.Commands = append(out.Commands, cmd)
			continue
		}
		// Re-diff the literal region against the whole reference with the
		// finer seed; keep the correction only if it actually found reuse.
		sub, err := c.fine.Diff(ref, cmd.Data)
		if err != nil || sub.NumCopies() == 0 {
			out.Commands = append(out.Commands, cmd)
			continue
		}
		for _, sc := range sub.Commands {
			sc.To += cmd.To // rebase into the version file
			out.Commands = append(out.Commands, sc)
		}
	}
	// Keep write order (the sub-deltas are in order, but be safe for inner
	// algorithms that are not).
	sort.SliceStable(out.Commands, func(i, j int) bool {
		return out.Commands[i].To < out.Commands[j].To
	})
	return out, nil
}
