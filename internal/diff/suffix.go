package diff

import (
	"index/suffixarray"

	"ipdelta/internal/delta"
)

// Suffix is a differencer built on a suffix array of the reference
// (index/suffixarray): at every version offset it finds a longest match in
// the reference by binary-searching progressively longer prefixes. It
// approaches the optimal copy cover (the string-to-string correction
// ideal the paper's related work formalizes) at the cost of O(L_R) index
// memory and higher constant factors — the upper end of the
// compression/cost spectrum, opposite the blockwise differencer.
type Suffix struct {
	minMatch int
}

// SuffixOption customizes a Suffix differencer.
type SuffixOption func(*Suffix)

// WithMinMatch sets the smallest copy worth emitting (default 8, minimum
// 4): shorter matches cost more to encode than to carry as literals.
func WithMinMatch(n int) SuffixOption {
	return func(s *Suffix) {
		if n < 4 {
			n = 4
		}
		s.minMatch = n
	}
}

// NewSuffix returns a suffix-array differencer.
func NewSuffix(opts ...SuffixOption) *Suffix {
	s := &Suffix{minMatch: 8}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements Algorithm.
func (s *Suffix) Name() string { return "suffix" }

// Diff implements Algorithm.
func (s *Suffix) Diff(ref, version []byte) (*delta.Delta, error) {
	d := &delta.Delta{RefLen: int64(len(ref)), VersionLen: int64(len(version))}
	if len(version) == 0 {
		return d, nil
	}
	if len(ref) < s.minMatch || len(version) < s.minMatch {
		return Null{}.Diff(ref, version)
	}
	idx := suffixarray.New(ref)

	e := &emitter{}
	v := 0
	lit := 0
	for v+s.minMatch <= len(version) {
		from, n := longestMatch(idx, ref, version[v:], s.minMatch)
		if n < s.minMatch {
			v++
			continue
		}
		e.literal(version[lit:v])
		e.copyCmd(int64(from), int64(n))
		v += n
		lit = v
	}
	e.literal(version[lit:])
	d.Commands = e.finish()
	return d, nil
}

// longestMatch finds the longest prefix of pat occurring in ref, by
// doubling then binary-searching the match length using the suffix array's
// Lookup. Returns the reference offset and length (0 if below minMatch).
func longestMatch(idx *suffixarray.Index, ref, pat []byte, minMatch int) (int, int) {
	if len(pat) < minMatch {
		return 0, 0
	}
	// Must match at least minMatch to be interesting.
	results := idx.Lookup(pat[:minMatch], 1)
	if len(results) == 0 {
		return 0, 0
	}
	// Exponentially grow the confirmed length, keeping one witness offset.
	best := results[0]
	lo := minMatch // confirmed length
	hi := lo * 2
	for hi <= len(pat) {
		r := idx.Lookup(pat[:hi], 1)
		if len(r) == 0 {
			break
		}
		best = r[0]
		lo = hi
		hi *= 2
	}
	if hi > len(pat) {
		hi = len(pat) + 1
	}
	// Binary search in (lo, hi).
	for lo+1 < hi {
		mid := (lo + hi) / 2
		r := idx.Lookup(pat[:mid], 1)
		if len(r) == 0 {
			hi = mid
		} else {
			best = r[0]
			lo = mid
		}
	}
	// Greedily extend beyond the indexed match (Lookup found an occurrence
	// of pat[:lo]; the actual common run may continue).
	n := lo
	for best+n < len(ref) && n < len(pat) && ref[best+n] == pat[n] {
		n++
	}
	return best, n
}
