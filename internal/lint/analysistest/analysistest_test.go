package analysistest_test

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"

	"ipdelta/internal/lint/analysis"
	"ipdelta/internal/lint/analysistest"
)

// marker is a deterministic test-only analyzer: it reports every "boom"
// string literal with a message containing regex metacharacters, so the
// fixtures can exercise both want-pattern forms.
var marker = &analysis.Analyzer{
	Name: "marker",
	Doc:  "reports every \"boom\" string literal (test-only)",
	Run: func(pass *analysis.Pass) (any, error) {
		pass.Inspect(func(n ast.Node) bool {
			if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING && lit.Value == `"boom"` {
				pass.Reportf(lit.Pos(), "string literal %s [lit]", lit.Value)
			}
			return true
		})
		return nil, nil
	},
}

// TestPassingFixture covers the happy path: multiple wants on one line,
// the double-quoted escaped form, and an //ipvet:ignore suppression that
// removes both the diagnostic and the need for a want.
func TestPassingFixture(t *testing.T) {
	out, err := analysistest.Check(".", marker, "good")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for _, p := range out.Problems {
		t.Errorf("unexpected problem: %s", p)
	}
	if len(out.Diagnostics) != 3 {
		t.Errorf("got %d diagnostics, want 3 (one suppressed)", len(out.Diagnostics))
	}
}

// TestMissingExpectation checks the failure mode where a want comment
// matches no diagnostic.
func TestMissingExpectation(t *testing.T) {
	out, err := analysistest.Check(".", marker, "missing")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(out.Problems) != 1 || !strings.Contains(out.Problems[0], "expected diagnostic matching") {
		t.Errorf("got problems %q, want one unmatched-expectation problem", out.Problems)
	}
}

// TestUnexpectedDiagnostic checks the failure mode where a diagnostic has
// no want comment.
func TestUnexpectedDiagnostic(t *testing.T) {
	out, err := analysistest.Check(".", marker, "unmatched")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(out.Problems) != 1 || !strings.Contains(out.Problems[0], "unexpected diagnostic") {
		t.Errorf("got problems %q, want one unexpected-diagnostic problem", out.Problems)
	}
}
