package diff

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockwiseByName(t *testing.T) {
	a, err := ByName("blockwise")
	if err != nil || a.Name() != "blockwise" {
		t.Fatalf("ByName: %v, %v", a, err)
	}
}

func TestBlockwiseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := make([]byte, 64<<10)
	rng.Read(ref)
	version := mutate(rng, ref, 15)
	roundTrip(t, NewBlockwise(), ref, version)
}

func TestBlockwiseIdenticalFiles(t *testing.T) {
	data := make([]byte, 16<<10)
	rand.New(rand.NewSource(12)).Read(data)
	d := roundTrip(t, NewBlockwise(), data, data)
	if d.AddedBytes() != 0 {
		t.Fatalf("identical files added %d bytes", d.AddedBytes())
	}
	// Consecutive blocks must merge into few long copies.
	if d.NumCopies() > 4 {
		t.Fatalf("identical files fragmented into %d copies", d.NumCopies())
	}
}

func TestBlockwiseAlignedBlockMove(t *testing.T) {
	// Swap two block-aligned halves: blockwise must find both as copies.
	rng := rand.New(rand.NewSource(13))
	a := make([]byte, 8<<10)
	b := make([]byte, 8<<10)
	rng.Read(a)
	rng.Read(b)
	ref := append(append([]byte(nil), a...), b...)
	version := append(append([]byte(nil), b...), a...)
	d := roundTrip(t, NewBlockwise(), ref, version)
	if d.AddedBytes() != 0 {
		t.Fatalf("aligned move added %d bytes", d.AddedBytes())
	}
}

func TestBlockwiseCoarserThanLinear(t *testing.T) {
	// With unaligned single-byte inserts, blockwise loses whole blocks
	// where the byte-granular linear differencer loses only bytes.
	rng := rand.New(rand.NewSource(14))
	ref := make([]byte, 32<<10)
	rng.Read(ref)
	version := append([]byte(nil), ref[:1000]...)
	version = append(version, 'X') // unaligned insert
	version = append(version, ref[1000:]...)

	db := roundTrip(t, NewBlockwise(), ref, version)
	dl := roundTrip(t, NewLinear(), ref, version)
	if db.AddedBytes() < dl.AddedBytes() {
		t.Fatalf("blockwise (%d added) beat linear (%d added) on unaligned insert",
			db.AddedBytes(), dl.AddedBytes())
	}
	// But rolling-window matching still recovers after the insert: most of
	// the file matches.
	if db.AddedBytes() > int64(len(version))/4 {
		t.Fatalf("blockwise added %d of %d bytes; rolling match failed",
			db.AddedBytes(), len(version))
	}
}

func TestBlockwiseOptions(t *testing.T) {
	b := NewBlockwise(WithBlockSize(4))
	if b.blockSize != 16 {
		t.Fatalf("block size clamped to %d, want 16", b.blockSize)
	}
	b = NewBlockwise(WithBlockSize(128))
	if b.blockSize != 128 {
		t.Fatalf("block size = %d", b.blockSize)
	}
	rng := rand.New(rand.NewSource(15))
	ref := make([]byte, 4<<10)
	rng.Read(ref)
	roundTrip(t, b, ref, mutate(rng, ref, 4))
}

func TestBlockwiseEmptyAndTiny(t *testing.T) {
	roundTrip(t, NewBlockwise(), nil, nil)
	roundTrip(t, NewBlockwise(), []byte("tiny"), []byte("files"))
	d := roundTrip(t, NewBlockwise(), make([]byte, 4096), nil)
	if len(d.Commands) != 0 {
		t.Fatal("empty version must produce no commands")
	}
}

func TestBlockwiseQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := make([]byte, rng.Intn(16<<10)+32)
		rng.Read(ref)
		version := mutate(rng, ref, rng.Intn(10))
		b := NewBlockwise(WithBlockSize(rng.Intn(256) + 16))
		d, err := b.Diff(ref, version)
		if err != nil {
			return false
		}
		if d.Validate() != nil {
			return false
		}
		got, err := d.Apply(ref)
		if err != nil {
			return false
		}
		return bytes.Equal(got, version)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockwiseWriteOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ref := make([]byte, 16<<10)
	rng.Read(ref)
	version := mutate(rng, ref, 8)
	d, err := NewBlockwise().Diff(ref, version)
	if err != nil {
		t.Fatal(err)
	}
	var next int64
	for _, c := range d.Commands {
		if c.To != next {
			t.Fatalf("command %v not in write order (expected offset %d)", c, next)
		}
		next += c.Length
	}
	if next != d.VersionLen {
		t.Fatal("coverage gap")
	}
}
